package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of counters, gauges and histograms with
// Prometheus-style text exposition and a JSON snapshot. Collectors are
// created on first lookup and live for the registry's lifetime; lookups are
// cheap but not free (one RLock + map read), so hot paths should resolve
// their collectors once up front and hold the typed pointers.
//
// A nil *Registry is the disabled registry: every lookup returns a nil
// collector (whose methods are no-ops), so instrumented code never branches
// on whether observability is on.
//
// WithPrefix returns a view that namespaces all lookups — the experiment
// harness uses it to give each experiment its own metric family (e.g.
// "t2_local_rounds_total") inside one served registry. Views share the
// parent's collectors and exposition; WriteText and Snapshot always cover
// the whole shared core regardless of which view they are called on.
type Registry struct {
	prefix string
	core   *registryCore
}

type registryCore struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{core: &registryCore{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}}
}

// WithPrefix returns a view of the registry that prepends prefix to every
// collector name it creates or looks up. Returns nil on a nil receiver.
func (r *Registry) WithPrefix(prefix string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{prefix: r.prefix + prefix, core: r.core}
}

// Counter returns the counter with the given name, creating it if needed.
// Returns nil (a valid disabled counter) on a nil receiver.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	c := r.core
	c.mu.RLock()
	m := c.counters[name]
	c.mu.RUnlock()
	if m != nil {
		return m
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m = c.counters[name]; m == nil {
		m = &Counter{}
		c.counters[name] = m
	}
	return m
}

// Gauge returns the gauge with the given name, creating it if needed.
// Returns nil on a nil receiver.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	c := r.core
	c.mu.RLock()
	m := c.gauges[name]
	c.mu.RUnlock()
	if m != nil {
		return m
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m = c.gauges[name]; m == nil {
		m = &Gauge{}
		c.gauges[name] = m
	}
	return m
}

// Histogram returns the histogram with the given name, creating it with the
// given upper bounds if needed. An existing histogram keeps its original
// bounds (the bounds argument is ignored then). Returns nil on a nil
// receiver.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	c := r.core
	c.mu.RLock()
	m := c.hists[name]
	c.mu.RUnlock()
	if m != nil {
		return m
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m = c.hists[name]; m == nil {
		m = newHistogram(bounds)
		c.hists[name] = m
	}
	return m
}

// Snapshot is a point-in-time JSON-friendly copy of every collector.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// HistSnapshot is the snapshot of one histogram. Buckets are cumulative,
// one per bound plus a final +Inf entry; Count always equals the last
// (cumulative +Inf) bucket, so the Prometheus invariants — monotone
// buckets, `+Inf` == `_count` — hold even when the snapshot races with
// concurrent Observe calls.
type HistSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// TakeSnapshot copies every collector of the registry's shared core. An
// empty snapshot is returned on a nil receiver.
func (r *Registry) TakeSnapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	c := r.core
	c.mu.RLock()
	defer c.mu.RUnlock()
	for name, m := range c.counters {
		s.Counters[name] = m.Value()
	}
	for name, m := range c.gauges {
		s.Gauges[name] = m.Value()
	}
	for name, m := range c.hists {
		// Count is derived from the summed bucket counts rather than read
		// from the separate count atomic: the two cannot be read atomically
		// together, and an independently read count could undercut the last
		// cumulative bucket mid-Observe, breaking `+Inf` == `_count`.
		counts := m.BucketCounts()
		cum := make([]int64, len(counts))
		run := int64(0)
		for i, c := range counts {
			run += c
			cum[i] = run
		}
		s.Histograms[name] = HistSnapshot{
			Count:   run,
			Sum:     m.Sum(),
			Bounds:  m.Bounds(),
			Buckets: cum,
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.TakeSnapshot())
}

// WriteText writes every collector in the Prometheus text exposition
// format, sorted by name so output is stable. No-op on a nil receiver.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.TakeSnapshot()
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %v\n", name, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		for i, bound := range h.Bounds {
			fmt.Fprintf(&b, "%s_bucket{le=\"%v\"} %d\n", name, bound, h.Buckets[i])
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Buckets[len(h.Buckets)-1])
		fmt.Fprintf(&b, "%s_sum %v\n", name, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
