package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one structured trace record. Producers fill in the fields that
// apply and leave the rest zero; zero fields are omitted from the JSONL
// output (except Kind, Seq and TimeNS, which every event carries).
//
// Established kinds: "run_start" / "round" / "run_end" (the LOCAL runtime),
// "mt_iteration" (the resamplers), "span" (generic timed phases). Timing
// fields (TimeNS, DurNS and friends) vary run to run by nature; consumers
// that need determinism compare only the structural fields, which is what
// the schema test in internal/exp does.
type Event struct {
	// Kind identifies the event type.
	Kind string `json:"kind"`
	// Seq is the emission sequence number within the recorder (0-based);
	// it makes interleaved multi-run streams sortable.
	Seq int64 `json:"seq"`
	// TimeNS is nanoseconds since the recorder was created.
	TimeNS int64 `json:"t_ns"`
	// Run tags all events of one run (see Recorder.NextRun).
	Run int64 `json:"run,omitempty"`
	// Phase names the phase of a span event (e.g. "compute", "deliver").
	Phase string `json:"phase,omitempty"`
	// Round is the 1-based round number of a round event.
	Round int `json:"round,omitempty"`
	// Nodes / Workers describe the run (run_start).
	Nodes   int `json:"nodes,omitempty"`
	Workers int `json:"workers,omitempty"`
	// Steps / Messages / Active / Halted are the per-round execution stats.
	Steps    int `json:"steps,omitempty"`
	Messages int `json:"messages,omitempty"`
	Active   int `json:"active,omitempty"`
	Halted   int `json:"halted,omitempty"`
	// Dropped / Crashed account injected faults (messages dropped, nodes
	// crash-stopped) in the round; absent on fault-free runs.
	Dropped int `json:"dropped,omitempty"`
	Crashed int `json:"crashed,omitempty"`
	// Shards / Stolen are the engine's sharding stats for the round
	// (shards executed, shards picked up by helper workers).
	Shards int `json:"shards,omitempty"`
	Stolen int `json:"stolen,omitempty"`
	// ComputeNS / DeliverNS are the round's phase durations; DurNS is the
	// duration of a span event.
	ComputeNS int64 `json:"compute_ns,omitempty"`
	DeliverNS int64 `json:"deliver_ns,omitempty"`
	DurNS     int64 `json:"dur_ns,omitempty"`
	// ScanNS / ResampleNS split a resampling iteration's duration between
	// the violated-event scan and the resampling work (mt_iteration).
	ScanNS     int64 `json:"scan_ns,omitempty"`
	ResampleNS int64 `json:"resample_ns,omitempty"`
	// Rounds is the final round count (run_end).
	Rounds int `json:"rounds,omitempty"`
	// Err carries the failure of an aborted run (run_end).
	Err string `json:"err,omitempty"`
	// Trace / Span / Parent causally link the event into an end-to-end
	// request trace (see TraceContext): Trace tags every event of one job,
	// Span identifies a "span" event, Parent its enclosing span. Runtime
	// events (round, mt_iteration, run_*) executed on behalf of a traced
	// job carry Trace (and Parent = the span they ran under) so a trace ID
	// from an exemplar or an NDJSON end event recovers the full causal
	// chain from the JSONL stream.
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Job is the service job ID the event belongs to, when known.
	Job string `json:"job,omitempty"`
	// Attempt is the 1-based service attempt the event belongs to
	// (attempt spans).
	Attempt int `json:"attempt,omitempty"`
}

// Recorder appends Events to an io.Writer as JSON Lines. It is safe for
// concurrent use; events from concurrent runs interleave but each line is
// written atomically. A nil *Recorder is the disabled recorder: Emit,
// Span.End and Flush are no-ops.
type Recorder struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	err   error
	seq   int64
	runs  int64
	start time.Time
}

// NewRecorder returns a recorder writing JSONL events to w.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{bw: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// NewFileRecorder creates (truncating) the file at path and returns a
// recorder writing to it plus a close function that flushes and closes the
// file.
func NewFileRecorder(path string) (*Recorder, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	r := NewRecorder(f)
	closeFn := func() error {
		ferr := r.Flush()
		if cerr := f.Close(); ferr == nil {
			ferr = cerr
		}
		return ferr
	}
	return r, closeFn, nil
}

// NextRun reserves a fresh run tag; every event of one logical run (one
// local.Run, one resampler execution) carries the same tag so interleaved
// streams from concurrent runs can be separated. Returns 0 on a nil
// receiver.
func (r *Recorder) NextRun() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs++
	return r.runs
}

// Emit writes one event, stamping Seq and TimeNS. No-op on a nil receiver.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	e.Seq = r.seq
	r.seq++
	e.TimeNS = time.Since(r.start).Nanoseconds()
	r.err = r.enc.Encode(e)
}

// Flush drains the recorder's buffer and returns the first write error
// encountered over its lifetime. No-op on a nil receiver.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.bw.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// Span is a lightweight timed phase: obtain one with Recorder.Span (or
// Recorder.StartSpan for traced spans), do the work, call End. Spans are
// values (no allocation); the zero Span (from a nil recorder) is a valid
// disabled span.
type Span struct {
	rec     *Recorder
	run     int64
	phase   string
	start   time.Time
	trace   string
	span    string
	parent  string
	job     string
	attempt int
}

// Span starts a timed phase with the given run tag and phase name. On a nil
// receiver it returns the disabled zero Span.
func (r *Recorder) Span(run int64, phase string) Span {
	if r == nil {
		return Span{}
	}
	return Span{rec: r, run: run, phase: phase, start: time.Now()}
}

// WithAttempt tags the span with a 1-based attempt number, carried on its
// event. Valid on the zero Span.
func (s Span) WithAttempt(n int) Span {
	s.attempt = n
	return s
}

// Dur returns the span's elapsed time so far (0 on the zero Span).
func (s Span) Dur() time.Duration {
	if s.rec == nil {
		return 0
	}
	return time.Since(s.start)
}

// End emits the span's "span" event with its duration and returns the
// duration. No-op (returning 0) on the zero Span.
func (s Span) End() time.Duration {
	if s.rec == nil {
		return 0
	}
	d := time.Since(s.start)
	s.rec.Emit(Event{
		Kind: "span", Run: s.run, Phase: s.phase, DurNS: d.Nanoseconds(),
		Trace: s.trace, Span: s.span, Parent: s.parent, Job: s.job, Attempt: s.attempt,
	})
	return d
}
