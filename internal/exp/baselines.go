package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/model"
	"repro/internal/mt"
	"repro/internal/obs"
	"repro/internal/prng"
)

// mtObserver builds the resampler observer the baseline experiments share.
func (s Sizes) mtObserver() mt.Observer {
	return mt.Observer{Metrics: s.Metrics, Trace: s.Trace}
}

// T6MoserTardos compares the deterministic fixers against the randomized
// Moser-Tardos baselines: resampling cost of MT grows as the margin
// approaches 1 and with n, while the deterministic fixer needs no
// randomness at all (and is the only one with a guarantee once
// ep(d+1) >= 1 but p·2^d < 1).
func T6MoserTardos(seed uint64, sz Sizes) (*Table, error) {
	t := &Table{
		ID:     "T6",
		Title:  "Baselines - Moser-Tardos (sequential & parallel) vs deterministic fixer",
		Note:   "MT resamplings/rounds are averages over trials; 'det viol' is the deterministic fixer's violation count (always 0). MT cost rises toward the threshold; the deterministic cost does not. MT-dist is the actual LOCAL implementation (3 rounds per iteration, fixed budget).",
		Header: []string{"n", "margin", "MT-seq resamplings", "MT-par rounds", "MT-dist resamples", "MT-dist ok", "det viol", "det time", "MT time"},
	}
	r := prng.New(seed)
	trials := sz.trials(20)
	for _, n := range []int{32, 128} {
		n = sz.scale(n)
		for _, margin := range []float64{0.5, 0.9, 0.99} {
			s, err := apps.NewSinklessWithMargin(graph.Cycle(n), margin)
			if err != nil {
				return nil, err
			}
			var resamples, rounds int
			mtStart := time.Now()
			for i := 0; i < trials; i++ {
				sres, err := mt.SequentialObs(s.Instance, r.Split(), 0, sz.mtObserver())
				if err != nil {
					return nil, err
				}
				if !sres.Satisfied {
					return nil, fmt.Errorf("exp: T6: MT-seq failed at n=%d margin=%v", n, margin)
				}
				resamples += sres.Resamplings
				pres, err := mt.ParallelObs(s.Instance, r.Split(), 0, sz.mtObserver())
				if err != nil {
					return nil, err
				}
				if !pres.Satisfied {
					return nil, fmt.Errorf("exp: T6: MT-par failed at n=%d margin=%v", n, margin)
				}
				rounds += pres.Rounds
			}
			mtTime := time.Since(mtStart)
			dist, err := mt.Distributed(s.Instance, seed, 0, sz.lopts(seed))
			if err != nil {
				return nil, err
			}
			detStart := time.Now()
			det, err := core.FixSequential(s.Instance, nil, sz.copts(0))
			if err != nil {
				return nil, err
			}
			detTime := time.Since(detStart)
			t.AddRow(n, margin,
				float64(resamples)/float64(trials), float64(rounds)/float64(trials),
				dist.Resamplings, dist.Satisfied,
				det.Stats.FinalViolatedEvents,
				detTime.Round(time.Microsecond).String(),
				(mtTime / time.Duration(2*trials)).Round(time.Microsecond).String())
		}
	}
	return t, nil
}

// T7Applications runs the paper's application problems end to end, solving
// each with the sequential fixer AND the distributed algorithm and verifying
// the domain-specific property directly.
func T7Applications(seed uint64, sz Sizes) (*Table, error) {
	t := &Table{
		ID:     "T7",
		Title:  "Applications - hypergraph orientations and relaxed weak splitting",
		Note:   "'domain ok' verifies the application-level property (no sink / no node sink in >= 2 orientations / every V-node sees >= 2 colours) rather than the generic event check.",
		Header: []string{"application", "n", "vars", "events", "d", "margin", "seq ok", "domain ok", "dist ok", "dist rounds"},
	}
	r := prng.New(seed)

	// Relaxed rank-3 sinkless orientation.
	n1 := sz.scale(30)
	for n1*3%3 != 0 {
		n1++
	}
	h, err := hypergraph.RandomRegularRank3(n1, 3, r)
	if err != nil {
		return nil, err
	}
	hs, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		return nil, err
	}
	if err := runApp(t, "hyper-sinkless (deg 3)", hs.Instance, seed, sz, func(a *appResult) bool {
		return len(hs.Sinks(a.seq)) == 0 && len(hs.Sinks(a.dist)) == 0
	}); err != nil {
		return t, err
	}

	// Three orientations, no relaxation knob (paper's hypergraph problem).
	n2 := sz.scale(24)
	for n2*2%3 != 0 {
		n2++
	}
	h2, err := hypergraph.RandomRegularRank3(n2, 2, r)
	if err != nil {
		return nil, err
	}
	to, err := apps.NewThreeOrientations(h2)
	if err != nil {
		return nil, err
	}
	if err := runApp(t, "3-orientations (deg 2)", to.Instance, seed, sz, func(a *appResult) bool {
		return len(to.Violations(a.seq)) == 0 && len(to.Violations(a.dist)) == 0
	}); err != nil {
		return t, err
	}

	// Relaxed weak splitting: 16 colours, every V-node must see >= 2.
	n3 := sz.scale(16)
	adj, err := apps.RandomBiregular(n3, 3, n3, 3, r)
	if err != nil {
		return nil, err
	}
	w, err := apps.NewWeakSplitting(adj, n3, 16)
	if err != nil {
		return nil, err
	}
	if err := runApp(t, "weak splitting (16 colours)", w.Instance, seed, sz, func(a *appResult) bool {
		return len(w.Monochromatic(a.seq)) == 0 && len(w.Monochromatic(a.dist)) == 0
	}); err != nil {
		return t, err
	}
	return t, nil
}

type appResult struct {
	seq, dist *model.Assignment
}

// runApp solves inst sequentially and distributed, appends a row and checks
// the domain property.
func runApp(t *Table, name string, inst *model.Instance, seed uint64, sz Sizes, domainOK func(*appResult) bool) error {
	_, margin := inst.ExponentialCriterion()
	seq, err := core.FixSequential(inst, nil, sz.copts(0))
	if err != nil {
		return fmt.Errorf("exp: T7 %s: %w", name, err)
	}
	dist, err := core.FixDistributed3(inst, sz.copts(0), sz.lopts(seed))
	if err != nil {
		return fmt.Errorf("exp: T7 %s: %w", name, err)
	}
	res := &appResult{seq: seq.Assignment, dist: dist.Assignment}
	ok := domainOK(res)
	t.AddRow(name, inst.NumEvents(), inst.NumVars(), inst.NumEvents(), inst.D(), margin,
		seq.Stats.FinalViolatedEvents == 0, ok, dist.ViolatedEvents == 0, dist.TotalRounds)
	if seq.Stats.FinalViolatedEvents != 0 || dist.ViolatedEvents != 0 || !ok {
		return fmt.Errorf("exp: T7 %s: failed", name)
	}
	return nil
}

// T8Ablations measures the design choices DESIGN.md calls out: the value
// selection strategy and the fixing order. All variants share the same
// guarantee; the ablation shows how much slack each leaves (certified bound,
// max event bound).
func T8Ablations(seed uint64, sz Sizes) (*Table, error) {
	t := &Table{
		ID:    "T8",
		Title: "Ablations - value strategy and fixing order (no-escape instances)",
		Note: "Both instances force every step to commit (no value kills all affected events): a biased " +
			"rank-2 cycle and the rank-3 three-orientations problem. All variants must solve them " +
			"(0 violations); peaks show how much of the 2-per-edge / 2^d-per-event / 1-certified budget " +
			"each strategy actually consumed.",
		Header: []string{"instance", "strategy", "order", "violations", "fallbacks", "peak edge sum", "peak event bound", "peak cert bound"},
	}
	r := prng.New(seed)

	biased, err := apps.NewSinklessBiasedCycle(sz.scale(32), 0.42)
	if err != nil {
		return nil, err
	}
	n := sz.scale(24)
	for n*2%3 != 0 {
		n++
	}
	h, err := hypergraph.RandomRegularRank3(n, 2, r)
	if err != nil {
		return nil, err
	}
	orient, err := apps.NewThreeOrientations(h)
	if err != nil {
		return nil, err
	}
	instances := []struct {
		name string
		inst *model.Instance
	}{
		{"biased cycle (r=2)", biased.Instance},
		{"3-orientations (r=3)", orient.Instance},
	}
	strategies := []struct {
		name string
		s    core.Strategy
	}{
		{"min-score (default)", core.StrategyMinScore},
		{"first-feasible", core.StrategyFirst},
		{"adversarial", core.StrategyAdversarial},
	}
	for _, in := range instances {
		orders := []struct {
			name  string
			order []int
		}{
			{"natural", nil},
			{"reverse", reverseOrder(in.inst.NumVars())},
			{"random", r.Perm(in.inst.NumVars())},
		}
		for _, strat := range strategies {
			for _, ord := range orders {
				res, err := core.FixSequential(in.inst, ord.order, sz.copts(strat.s))
				if err != nil {
					return nil, err
				}
				t.AddRow(in.name, strat.name, ord.name, res.Stats.FinalViolatedEvents, res.Stats.Fallbacks,
					res.Stats.PeakEdgeSum, res.Stats.PeakEventBound, res.Stats.PeakCertBound)
				if res.Stats.FinalViolatedEvents != 0 {
					return t, fmt.Errorf("exp: T8 %s %s/%s: violations", in.name, strat.name, ord.name)
				}
			}
			// The strongest order: an ADAPTIVE adversary that inspects the
			// bookkeeping before naming each next variable.
			res, err := core.FixSequentialAdaptive(in.inst, core.GreedyAdversary, sz.copts(strat.s))
			if err != nil {
				return nil, err
			}
			t.AddRow(in.name, strat.name, "adaptive adversary", res.Stats.FinalViolatedEvents, res.Stats.Fallbacks,
				res.Stats.PeakEdgeSum, res.Stats.PeakEventBound, res.Stats.PeakCertBound)
			if res.Stats.FinalViolatedEvents != 0 {
				return t, fmt.Errorf("exp: T8 %s %s/adaptive: violations", in.name, strat.name)
			}
		}
	}
	return t, nil
}

func reverseOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i
	}
	return order
}

// Runner is one experiment of the harness: a stable DESIGN.md identifier
// plus its entry point. Each runner is self-contained (own PRNG seeded from
// the shared seed), so runners may execute concurrently.
type Runner struct {
	// ID is the DESIGN.md experiment identifier ("F1", "T2", ...).
	ID string
	// Run produces the experiment's table.
	Run func(seed uint64, sz Sizes) (*Table, error)
}

// Runners returns the experiments in DESIGN.md order. The CLIs drive
// experiments exclusively through this registry (and RunByID), so adding an
// experiment here is the single registration step.
func Runners() []Runner {
	return []Runner{
		{"F1", func(seed uint64, _ Sizes) (*Table, error) { return F1Surface(0.5, 20000, seed) }},
		{"F2", func(uint64, Sizes) (*Table, error) { return F2Witness() }},
		{"T1", T1Rank2},
		{"T2", T2DistributedRank2},
		{"T3", T3Rank3},
		{"T4", T4DistributedRank3},
		{"T5", T5Threshold},
		{"T6", T6MoserTardos},
		{"T7", T7Applications},
		{"T8", T8Ablations},
		{"T9", T9Conjecture},
		{"T10", T10Spectrum},
		{"T11", T11LowerBound},
	}
}

// RunByID runs a single experiment selected by its (case-insensitive)
// DESIGN.md identifier, with profiling as in AllParallel.
func RunByID(id string, seed uint64, sz Sizes) (*Table, error) {
	for _, r := range Runners() {
		if strings.EqualFold(r.ID, id) {
			return runProfiled(r, seed, sz)
		}
	}
	return nil, fmt.Errorf("exp: unknown experiment %q", id)
}

// runProfiled executes one runner with its own metric namespace and attaches
// the execution profile to the table. When sz.Metrics is set the experiment
// writes into a "<id>_" prefix view of it (so concurrent experiments never
// collide on a family); otherwise a private registry feeds the profile
// rollup alone. The profile lives outside the rendered cells, so table
// bytes are identical with and without observability.
func runProfiled(r Runner, seed uint64, sz Sizes) (*Table, error) {
	reg := sz.Metrics.WithPrefix(strings.ToLower(r.ID) + "_")
	if reg == nil {
		reg = obs.NewRegistry()
	}
	szr := sz
	szr.Metrics = reg
	before := engineRollup(reg)
	start := time.Now()
	tbl, err := r.Run(seed, szr)
	if tbl != nil {
		p := engineRollup(reg)
		p.sub(before)
		p.WallClock = time.Since(start)
		tbl.Profile = &p
	}
	return tbl, err
}

// engineRollup reads the registry's engine-level counters into a Profile
// (WallClock left zero). Reading counters that were never written returns
// zeros, so the rollup is safe for purely sequential experiments too.
func engineRollup(reg *obs.Registry) Profile {
	return Profile{
		LocalRuns:    reg.Counter("local_runs_total").Value(),
		Rounds:       reg.Counter("local_rounds_total").Value(),
		Steps:        reg.Counter("local_steps_total").Value(),
		Messages:     reg.Counter("local_messages_total").Value(),
		Shards:       reg.Counter("engine_shards_total").Value(),
		ShardsStolen: reg.Counter("engine_shards_stolen_total").Value(),
	}
}

// All runs every experiment with default sizes and returns the tables in
// DESIGN.md order.
func All(seed uint64, sz Sizes) ([]*Table, error) {
	return AllParallel(seed, sz, 1)
}

// AllParallel runs the independent experiments concurrently on a sharded
// worker pool with the given worker count (0 = GOMAXPROCS) and returns the
// tables in DESIGN.md order — the output is identical to All's, only the
// wall-clock differs. As in All, tables stop at the first (by DESIGN.md
// order) experiment that failed, including that experiment's partial table.
func AllParallel(seed uint64, sz Sizes, workers int) ([]*Table, error) {
	runners := Runners()
	tables := make([]*Table, len(runners))
	errs := make([]error, len(runners))
	pool := engine.New(workers)
	defer pool.Close()
	pool.ForEach(len(runners), func(i int) {
		tables[i], errs[i] = runProfiled(runners[i], seed, sz)
	})
	var out []*Table
	for i := range runners {
		if tables[i] != nil {
			out = append(out, tables[i])
		}
		if errs[i] != nil {
			return out, errs[i]
		}
	}
	return out, nil
}
