package batch_test

import (
	"testing"

	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/kernel"
)

// The batch layer adopts the compiled kernels all-or-nothing per packed
// batch: when every instance compiles, the violated scan runs word-parallel
// over one shared bitset in packed word space, and resampling writes through
// to the packed mirrors. These tests pit that path against the generic one
// (kernel.SetEnabled(false)) and demand identical per-instance results —
// same values, same counters — at every worker count, which also re-proves
// the canonical-result cache keys are path-independent.

// runBoth executes fn with kernels enabled and disabled and returns both
// result sets.
func runBoth(t *testing.T, fn func(t *testing.T) []batch.Result) (on, off []batch.Result) {
	t.Helper()
	prev := kernel.SetEnabled(true)
	defer kernel.SetEnabled(prev)
	on = fn(t)
	kernel.SetEnabled(false)
	off = fn(t)
	return on, off
}

func assertSameBatch(t *testing.T, label string, on, off []batch.Result) {
	t.Helper()
	if len(on) != len(off) {
		t.Fatalf("%s: result counts diverge: %d vs %d", label, len(on), len(off))
	}
	for k := range on {
		a, b := on[k], off[k]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("%s[%d]: errors %v / %v", label, k, a.Err, b.Err)
		}
		if a.Satisfied != b.Satisfied || a.Resamplings != b.Resamplings || a.Rounds != b.Rounds {
			t.Fatalf("%s[%d]: counters diverge: (sat=%v res=%d rounds=%d) vs (sat=%v res=%d rounds=%d)",
				label, k, a.Satisfied, a.Resamplings, a.Rounds, b.Satisfied, b.Resamplings, b.Rounds)
		}
		sameValues(t, label, b.Assignment, a.Assignment)
	}
}

// TestBatchParallelKernelMatchesGeneric pins the packed parallel-rounds
// resampler: the kernel word-space scan plus bitset local-minimum selection
// reproduces the generic path bit for bit at every worker count.
func TestBatchParallelKernelMatchesGeneric(t *testing.T) {
	insts := testInstances(t)
	seeds := testSeeds(len(insts))
	for _, workers := range workerCounts() {
		pool := engine.New(workers)
		on, off := runBoth(t, func(t *testing.T) []batch.Result {
			results, err := batch.RunParallelMT(batch.Pack(insts), seeds, batch.Options{Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			return results
		})
		pool.Close()
		assertSameBatch(t, "parallel", on, off)
	}
}

// TestBatchSequentialKernelMatchesGeneric is the sequential counterpart.
func TestBatchSequentialKernelMatchesGeneric(t *testing.T) {
	insts := testInstances(t)
	seeds := testSeeds(len(insts))
	for _, workers := range workerCounts() {
		pool := engine.New(workers)
		on, off := runBoth(t, func(t *testing.T) []batch.Result {
			results, err := batch.RunSequentialMT(batch.Pack(insts), seeds, batch.Options{Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			return results
		})
		pool.Close()
		assertSameBatch(t, "sequential", on, off)
	}
}
