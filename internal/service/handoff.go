package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/cluster"
)

// This file is the cache-elasticity half of the cluster layer: runtime
// join/leave with warm-cache handoff, and hot-entry replication to the
// ring successor.
//
// Membership changes flow through one primitive, applyMembership: adopt
// the newer epoch (peerLayer.adopt — idempotent, last-writer-wins) and,
// when asked, fan the full set out to every member. The adoption hook
// computes which locally-cached entries changed owner and streams them to
// their new home over POST /v1/peer/handoff — chunked, rate-bounded, each
// chunk retried once and then dropped: a lost chunk degrades to a cache
// miss on the new owner, never to an error anywhere.

// handoffTuning are the resolved transfer knobs (see ClusterConfig).
type handoffTuning struct {
	chunk     int           // entries per chunk
	rate      int           // entries/second ceiling
	hotK      int           // top-k replication set size; <0 disables
	replEvery time.Duration // replication cadence
}

func (c *ClusterConfig) tuning() handoffTuning {
	t := handoffTuning{chunk: c.HandoffChunk, rate: c.HandoffRate, hotK: c.HotReplicas, replEvery: c.ReplicateInterval}
	if t.chunk <= 0 {
		t.chunk = 64
	}
	if t.rate <= 0 {
		t.rate = 4096
	}
	if t.hotK == 0 {
		t.hotK = 16
	}
	if t.replEvery <= 0 {
		t.replEvery = 2 * time.Second
	}
	return t
}

// startCluster wires the elasticity machinery after the peer layer is
// built: the adoption hook that streams handoffs, and the hot-entry
// replicator goroutine. Called once from New.
func (s *Service) startCluster() {
	s.peers.onChange = func(old, now cluster.Membership) {
		// Handoffs run off the adopting goroutine (often an HTTP handler):
		// a transfer can take seconds and must not block the fan-out path.
		s.clusterWG.Add(1)
		go func() {
			defer s.clusterWG.Done()
			s.handoffChanged(old, now)
		}()
	}
	if s.tuning.hotK > 0 {
		s.clusterWG.Add(1)
		go s.replicator()
	}
}

// stopCluster halts the replicator and waits for in-flight handoffs.
func (s *Service) stopCluster() {
	close(s.clusterStop)
	s.clusterWG.Wait()
}

// clusterCtx returns a context cancelled when the cluster layer stops.
func (s *Service) clusterCtx() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	stop := s.clusterStop
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// applyMembership adopts mem if newer and, when spread is set, fans the
// full membership out to every other member (best effort). Reports
// whether the local membership advanced.
func (s *Service) applyMembership(mem cluster.Membership, spread bool) bool {
	adopted := s.peers.adopt(mem)
	if adopted && spread {
		s.clusterWG.Add(1)
		go func() {
			defer s.clusterWG.Done()
			ctx, cancel := s.clusterCtx()
			defer cancel()
			s.fanOutMembership(ctx, mem)
		}()
	}
	return adopted
}

// fanOutMembership pushes mem to every member except self. Receivers
// adopt idempotently, so double delivery is harmless; a missed member is
// repaired by the router's anti-entropy sync.
func (s *Service) fanOutMembership(ctx context.Context, mem cluster.Membership) {
	body, err := json.Marshal(cluster.MembershipUpdate{From: s.peers.self, Membership: mem})
	if err != nil {
		return
	}
	for name, base := range mem.Nodes {
		if name == s.peers.self || base == "" {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/peer/membership", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := s.peers.client.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// handoffChanged streams every locally-cached entry whose owner changed
// between two memberships to its new home. Only entries this node owned
// under old move (other nodes push their own slices), so a join moves
// exactly the joiner's ring slice — the bounded-movement invariant of the
// ring carries over to the cache.
func (s *Service) handoffChanged(old, now cluster.Membership) {
	oldRing := old.Ring(s.peers.vnodes)
	newRing := now.Ring(s.peers.vnodes)
	moved := map[string][]hotEntry{} // new owner → entries
	for _, e := range s.cache.snapshotIf(nil) {
		if oldRing.Owner(e.key) != s.peers.self {
			continue
		}
		if dst := newRing.Owner(e.key); dst != s.peers.self {
			moved[dst] = append(moved[dst], e)
		}
	}
	if len(moved) == 0 {
		return
	}
	ctx, cancel := s.clusterCtx()
	defer cancel()
	for dst, entries := range moved {
		s.pushEntries(ctx, now.Nodes[dst], now.Epoch, entries)
	}
}

// pushEntries streams entries to one receiver in rate-bounded chunks.
// Each chunk is retried once; a chunk that still fails is dropped (the
// receiver will simply miss on those keys) and the rest of the transfer
// continues — handoff failures must never become errors.
func (s *Service) pushEntries(ctx context.Context, baseURL string, epoch int64, entries []hotEntry) {
	if baseURL == "" {
		return
	}
	t := s.tuning
	for seq := 0; len(entries) > 0; seq++ {
		n := t.chunk
		if n > len(entries) {
			n = len(entries)
		}
		chunk, rest := entries[:n], entries[n:]
		req := cluster.HandoffRequest{
			From:    s.peers.self,
			Epoch:   epoch,
			Seq:     seq,
			Done:    len(rest) == 0,
			Entries: make([]cluster.HandoffEntry, 0, n),
		}
		for _, e := range chunk {
			raw, err := json.Marshal(e.sum)
			if err != nil {
				continue
			}
			req.Entries = append(req.Entries, cluster.HandoffEntry{Key: cluster.FormatKey(e.key), Hits: e.hits, Summary: raw})
		}
		sent := false
		for attempt := 0; attempt < 2 && !sent; attempt++ {
			sent = s.postHandoffChunk(ctx, baseURL, req)
		}
		if sent {
			s.peers.m.handoffOut.Add(int64(len(req.Entries)))
		} else {
			s.peers.m.handoffFails.Inc()
		}
		entries = rest
		if len(entries) > 0 {
			// Rate bound: one chunk per chunk/rate seconds.
			delay := time.Duration(float64(n) / float64(t.rate) * float64(time.Second))
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return
			}
		}
	}
}

func (s *Service) postHandoffChunk(ctx context.Context, baseURL string, hr cluster.HandoffRequest) bool {
	body, err := json.Marshal(hr)
	if err != nil {
		return false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/peer/handoff", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.peers.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode/100 == 2
}

// replicator periodically write-through replicates the hottest self-owned
// cache entries to each key's ring successor, so an unplanned SIGKILL of
// this node leaves its hot keys warm on the node the router will spill
// to. Replication reuses the existing PUT /v1/peer/cache write-through —
// the successor stores the entry like any peer store.
func (s *Service) replicator() {
	defer s.clusterWG.Done()
	t := time.NewTicker(s.tuning.replEvery)
	defer t.Stop()
	for {
		select {
		case <-s.clusterStop:
			return
		case <-t.C:
		}
		ring := s.peers.ringNow()
		hot := s.cache.topHot(s.tuning.hotK, func(key uint64) bool { return ring.Owner(key) == s.peers.self })
		if len(hot) == 0 {
			continue
		}
		ctx, cancel := s.clusterCtx()
		for _, e := range hot {
			pref := ring.Prefer(e.key, 2)
			if len(pref) < 2 {
				break // single-node ring: nowhere to replicate
			}
			s.peers.storeTo(ctx, pref[1], e.key, e.sum)
			s.peers.m.replicated.Inc()
		}
		cancel()
	}
}

// AnnounceJoin introduces this node to a running cluster through any seed
// member: POST /cluster/members with a join change. The seed mints the
// next epoch, fans it out, and returns the new membership, which this
// node adopts immediately (the fan-out may also race it — adoption is
// idempotent). Retries a few times so a node booting alongside its seed
// does not lose the race.
func (s *Service) AnnounceJoin(ctx context.Context, seedURL string) error {
	if s.peers == nil {
		return fmt.Errorf("service: not clustered")
	}
	selfURL := s.peers.urlOf(s.peers.self)
	if selfURL == "" {
		return fmt.Errorf("service: self URL unknown; put %q in Cluster.Nodes", s.peers.self)
	}
	change, err := json.Marshal(cluster.MemberChange{Action: "join", Name: s.peers.self, URL: selfURL})
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(time.Duration(attempt) * 200 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, seedURL+"/cluster/members", bytes.NewReader(change))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := s.peers.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil || resp.StatusCode/100 != 2 {
			lastErr = fmt.Errorf("seed answered %d", resp.StatusCode)
			continue
		}
		var mem cluster.Membership
		if err := json.Unmarshal(body, &mem); err != nil {
			lastErr = err
			continue
		}
		s.applyMembership(mem, false) // the seed already fans out
		return nil
	}
	return fmt.Errorf("service: join announce failed: %w", lastErr)
}

// LeaveCluster runs the planned-leave protocol: stream every cached entry
// to the node that owns it once this node is gone (the reverse warm
// handoff), then fan out the membership without self. Call before
// Shutdown so peers stop routing here only after their caches are warm.
// Every failure inside degrades to future cache misses — never an error
// that would block the drain.
func (s *Service) LeaveCluster(ctx context.Context) {
	if s.peers == nil {
		return
	}
	cur := s.peers.membership()
	next := cur.WithLeave(s.peers.self)
	if len(next.Nodes) == 0 {
		return // last node: nobody to hand off to or to notify
	}
	ring := next.Ring(s.peers.vnodes)
	moved := map[string][]hotEntry{}
	for _, e := range s.cache.snapshotIf(nil) {
		if dst := ring.Owner(e.key); dst != s.peers.self {
			moved[dst] = append(moved[dst], e)
		}
	}
	for dst, entries := range moved {
		s.pushEntries(ctx, next.Nodes[dst], next.Epoch, entries)
	}
	s.fanOutMembership(ctx, next)
}

// --- HTTP handlers (mounted by NewHandler when clustered) ---

// NodeClusterStatus is the body of a node's GET /cluster: its identity
// and current membership, polled by routers (anti-entropy) and by
// operators watching a handoff land.
type NodeClusterStatus struct {
	Self         string            `json:"self"`
	Epoch        int64             `json:"epoch"`
	Nodes        map[string]string `json:"nodes"`
	CacheEntries int               `json:"cache_entries"`
}

// clusterGet implements GET /cluster on a node.
func (s *Service) clusterGet(w http.ResponseWriter, _ *http.Request) {
	mem := s.peers.membership()
	writeJSON(w, http.StatusOK, NodeClusterStatus{
		Self:         s.peers.self,
		Epoch:        mem.Epoch,
		Nodes:        mem.Nodes,
		CacheEntries: s.cache.len(),
	})
}

// clusterMembersPost implements the admin POST /cluster/members on a
// node: mint the next epoch from the change, adopt it, fan it out, and
// return the new membership.
func (s *Service) clusterMembersPost(w http.ResponseWriter, r *http.Request) {
	var change cluster.MemberChange
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	if err := dec.Decode(&change); err != nil {
		http.Error(w, "bad member change: "+err.Error(), http.StatusBadRequest)
		return
	}
	cur := s.peers.membership()
	var next cluster.Membership
	switch change.Action {
	case "join":
		if change.Name == "" || change.URL == "" {
			http.Error(w, "join needs name and url", http.StatusBadRequest)
			return
		}
		next = cur.WithJoin(change.Name, change.URL)
	case "leave":
		if change.Name == "" {
			http.Error(w, "leave needs name", http.StatusBadRequest)
			return
		}
		next = cur.WithLeave(change.Name)
	default:
		http.Error(w, fmt.Sprintf("unknown action %q", change.Action), http.StatusBadRequest)
		return
	}
	s.applyMembership(next, true)
	writeJSON(w, http.StatusOK, next)
}

// peerMembershipPost implements POST /v1/peer/membership: adopt a fanned-
// out membership if newer. Always 204 — an old epoch is not an error,
// just already-known news.
func (s *Service) peerMembershipPost(w http.ResponseWriter, r *http.Request) {
	var up cluster.MembershipUpdate
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	if err := dec.Decode(&up); err != nil {
		http.Error(w, "bad membership update: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.applyMembership(up.Membership, false)
	w.WriteHeader(http.StatusNoContent)
}

// peerHandoffPost implements POST /v1/peer/handoff: store one chunk of a
// warm-cache transfer. Entries are keyed puts, so re-delivered chunks are
// harmless; malformed entries are skipped, never fatal.
func (s *Service) peerHandoffPost(w http.ResponseWriter, r *http.Request) {
	var hr cluster.HandoffRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	if err := dec.Decode(&hr); err != nil {
		http.Error(w, "bad handoff chunk: "+err.Error(), http.StatusBadRequest)
		return
	}
	accepted := 0
	for _, e := range hr.Entries {
		key, ok := cluster.ParseKey(e.Key)
		if !ok {
			continue
		}
		var sum Summary
		if json.Unmarshal(e.Summary, &sum) != nil {
			continue
		}
		if sum.Partial {
			continue
		}
		s.cache.putHot(key, &sum, e.Hits)
		accepted++
	}
	s.peers.m.handoffIn.Add(int64(accepted))
	writeJSON(w, http.StatusOK, cluster.HandoffResponse{Accepted: accepted})
}
