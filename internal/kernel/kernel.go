// Package kernel provides flat, cache-friendly evaluation kernels compiled
// once per model.Instance. The generic representation (pointer-rich
// graph.Graph adjacency, per-event closures, per-call []int scratch) is what
// the rest of the repository programs against; this package compiles it into
// compressed-sparse-row (CSR) arrays, bit-packed assignment words and
// precomputed conditional-probability tables so that the hot loops of the
// resamplers and fixers — violated-event scans, Inc(·,·) queries, final
// CountViolated sweeps — run over contiguous memory without allocating.
//
// The contract is strict equivalence: every kernel result is bit-identical
// to the generic path, including the exact float operation order of the
// closed-form conditional probabilities (Conjunction, AllEqual), so golden
// tables, differential tests and checkpoints are interchangeable between
// the two paths. Events without a recognized closed form fall back to the
// instance's own predicate/probability functions, which keeps the kernel a
// pure accelerator: it never changes semantics, only layout.
//
// Compilation is per-instance and cached (For); kernels can be disabled
// process-wide (SetEnabled) to force every caller back onto the generic
// path, which is how the differential tests use the old code as an oracle.
package kernel

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/model"
)

// Event kinds. Closed-form kinds are evaluated from the compiled tables;
// kindGeneric events gather their scope values and call the instance's own
// predicate (and probability) functions.
const (
	kindGeneric uint8 = iota
	kindConj          // conjunction: bad iff every scope value is in its bad set
	kindAllEqual      // all-equal: bad iff all scope values coincide
)

// maxConjValues bounds the value-space size of a conjunction scope slot that
// can be compiled into a single uint64 bad-set mask; larger slots fall back
// to the generic evaluator.
const maxConjValues = 64

// Compiled is the flat kernel for one immutable model.Instance. All fields
// are read-only after Compile, so a Compiled may be shared freely across
// goroutines; mutable per-run state lives in Assignment and Scratch.
type Compiled struct {
	inst *model.Instance

	numVars   int
	numEvents int

	// Event scopes, CSR: event e owns slots scopeOff[e]..scopeOff[e+1].
	scopeOff []int32
	scopeVar []int32

	// Variable -> events, CSR: variable v affects varEvents[varOff[v]:varOff[v+1]].
	varOff    []int32
	varEvents []int32

	// Dependency-graph adjacency, CSR; each row ascending (mirrors
	// graph.Graph.Neighbors order).
	adjOff []int32
	adj    []int32

	// Deduplicated distribution tables: variable v draws from distribution
	// varDist[v], whose probabilities (and cumulative sums) occupy
	// probs[distOff[d]:distOff[d+1]]. probs/cum are verbatim copies of the
	// dist.Distribution vectors, so every probability read and sample is
	// bitwise identical to the generic path.
	varDist []int32
	distOff []int32
	probs   []float64
	cum     []float64

	// Per-event kind plus the closed-form tables, parallel to scopeVar:
	// for kindConj slots, conjMask holds the bad-set bitmask and conjSetP
	// the precomputed Pr[X in S] (summed in the same order as
	// model.NewConjunction, for bitwise-equal products).
	kind     []uint8
	conjMask []uint64
	conjSetP []float64
	// evAux[e] is the all-equal maxK (largest scope value-space) for
	// kindAllEqual events and unused otherwise.
	evAux []int32

	maxScope   int
	hasGeneric bool

	// Bit-packed assignment geometry: every variable value occupies valBits
	// bits (a power of two, so values never straddle a 64-bit word).
	valBits  uint   // bits per value: 1, 2, 4, 8, 16 or 32
	valShift uint   // log2(valBits)
	valMask  uint64 // (1<<valBits)-1
	vpwShift uint   // log2(64/valBits): variable id -> word index shift
	vpwMask  uint   // 64/valBits - 1:   variable id -> slot-in-word mask
	valWords int    // value words per assignment
}

// Instance returns the instance the kernel was compiled from.
func (c *Compiled) Instance() *model.Instance { return c.inst }

// NumVars returns the number of variables.
func (c *Compiled) NumVars() int { return c.numVars }

// NumEvents returns the number of events.
func (c *Compiled) NumEvents() int { return c.numEvents }

// MaxScope returns the largest event scope size.
func (c *Compiled) MaxScope() int { return c.maxScope }

// HasGeneric reports whether any event lacks a compiled closed form and is
// evaluated through the instance's own predicate.
func (c *Compiled) HasGeneric() bool { return c.hasGeneric }

// EventWords returns the number of 64-bit words of a violated-event bitset
// (one bit per event).
func (c *Compiled) EventWords() int { return (c.numEvents + 63) / 64 }

// Scope returns a copy of event e's scope, in declaration order.
func (c *Compiled) Scope(e int) []int {
	return c.csrRow(c.scopeOff, c.scopeVar, e)
}

// Neighbors returns a copy of event e's dependency-graph neighbors in
// ascending order, exactly as graph.Graph.Neighbors enumerates them.
func (c *Compiled) Neighbors(e int) []int {
	return c.csrRow(c.adjOff, c.adj, e)
}

// VarEvents returns a copy of the identifiers of the events variable v
// affects, in event order (the variable's rank list).
func (c *Compiled) VarEvents(v int) []int {
	return c.csrRow(c.varOff, c.varEvents, v)
}

func (c *Compiled) csrRow(off, data []int32, i int) []int {
	lo, hi := off[i], off[i+1]
	out := make([]int, hi-lo)
	for j := lo; j < hi; j++ {
		out[j-lo] = int(data[j])
	}
	return out
}

// distFor returns the flat-table offset and size of variable v's
// distribution.
func (c *Compiled) distFor(v int32) (off, size int32) {
	d := c.varDist[v]
	off = c.distOff[d]
	return off, c.distOff[d+1] - off
}

// Compile builds the flat kernel for inst. It fails only on instances the
// packed representation cannot hold (a variable value-space beyond 2^32
// values, or total scope size beyond the int32 CSR index range); callers
// normally go through For, which falls back to the generic path on error.
func Compile(inst *model.Instance) (*Compiled, error) {
	n, m := inst.NumVars(), inst.NumEvents()
	c := &Compiled{inst: inst, numVars: n, numEvents: m}

	// Distribution tables, deduplicated by pointer: variables built from a
	// shared dist.Distribution share one flat table.
	distIdx := make(map[*dist.Distribution]int32)
	c.varDist = make([]int32, n)
	c.distOff = []int32{0}
	maxValues := 1
	for v := 0; v < n; v++ {
		d := inst.Var(v).Dist
		id, ok := distIdx[d]
		if !ok {
			size := d.Size()
			if size > 1<<31-1 {
				return nil, fmt.Errorf("kernel: variable %d has %d values, beyond the packed range", v, size)
			}
			id = int32(len(c.distOff) - 1)
			distIdx[d] = id
			for i := 0; i < size; i++ {
				c.probs = append(c.probs, d.Prob(i))
			}
			c.cum = append(c.cum, cumulative(d)...)
			c.distOff = append(c.distOff, int32(len(c.probs)))
		}
		c.varDist[v] = id
		if size := inst.Var(v).Dist.Size(); size > maxValues {
			maxValues = size
		}
	}

	// Bit width: smallest power of two holding every value index.
	need := bits.Len(uint(maxValues - 1))
	if need == 0 {
		need = 1
	}
	if need > 32 {
		return nil, fmt.Errorf("kernel: value space needs %d bits, beyond the 32-bit packed limit", need)
	}
	c.valBits = 1
	for c.valBits < uint(need) {
		c.valBits <<= 1
	}
	c.valShift = uint(bits.TrailingZeros(c.valBits))
	c.valMask = 1<<c.valBits - 1
	c.vpwShift = 6 - c.valShift
	c.vpwMask = 1<<c.vpwShift - 1
	c.valWords = (n + (1 << c.vpwShift) - 1) >> c.vpwShift

	// Event scopes (CSR) and kinds.
	total := 0
	for e := 0; e < m; e++ {
		total += len(inst.Event(e).Scope)
	}
	if total > 1<<31-1 {
		return nil, fmt.Errorf("kernel: total scope size %d beyond the int32 CSR range", total)
	}
	c.scopeOff = make([]int32, m+1)
	c.scopeVar = make([]int32, 0, total)
	c.kind = make([]uint8, m)
	c.conjMask = make([]uint64, total)
	c.conjSetP = make([]float64, total)
	c.evAux = make([]int32, m)
	for e := 0; e < m; e++ {
		ev := inst.Event(e)
		base := len(c.scopeVar)
		for _, vid := range ev.Scope {
			c.scopeVar = append(c.scopeVar, int32(vid))
		}
		c.scopeOff[e+1] = int32(len(c.scopeVar))
		if len(ev.Scope) > c.maxScope {
			c.maxScope = len(ev.Scope)
		}
		c.kind[e] = c.classify(ev, base)
		if c.kind[e] == kindGeneric {
			c.hasGeneric = true
		}
	}

	// Variable -> events CSR, in event order (mirrors Variable.Events).
	c.varOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		c.varOff[v+1] = c.varOff[v] + int32(len(inst.Var(v).Events))
	}
	c.varEvents = make([]int32, c.varOff[n])
	for v := 0; v < n; v++ {
		row := c.varEvents[c.varOff[v]:c.varOff[v+1]]
		for i, e := range inst.Var(v).Events {
			row[i] = int32(e)
		}
	}

	// Dependency-graph adjacency CSR, ascending per row.
	g := inst.DependencyGraph()
	c.adjOff = make([]int32, m+1)
	for e := 0; e < m; e++ {
		c.adjOff[e+1] = c.adjOff[e] + int32(g.Degree(e))
	}
	c.adj = make([]int32, c.adjOff[m])
	for e := 0; e < m; e++ {
		row := c.adj[c.adjOff[e]:c.adjOff[e+1]]
		i := 0
		g.ForEachNeighbor(e, func(u, _ int) {
			row[i] = int32(u)
			i++
		})
	}
	return c, nil
}

// classify determines the kind of ev and, for conjunctions, fills the
// per-slot mask/probability tables starting at scope slot base.
func (c *Compiled) classify(ev *model.Event, base int) uint8 {
	switch spec := ev.Spec.(type) {
	case model.ConjunctionSpec:
		if len(spec.BadSets) != len(ev.Scope) {
			return kindGeneric
		}
		for i, vid := range ev.Scope {
			off, size := c.distFor(int32(vid))
			if size > maxConjValues {
				return kindGeneric
			}
			var mask uint64
			// Sum the set probability in the declared order with the same
			// duplicate skipping as model.NewConjunction, so the
			// precomputed Pr[X in S] is bitwise identical to setProb.
			p := 0.0
			for _, v := range spec.BadSets[i] {
				if v < 0 || v >= int(size) {
					return kindGeneric
				}
				if mask>>uint(v)&1 == 0 {
					mask |= 1 << uint(v)
					p += c.probs[off+int32(v)]
				}
			}
			c.conjMask[base+i] = mask
			c.conjSetP[base+i] = p
		}
		return kindConj
	case model.AllEqualSpec:
		maxK := int32(0)
		for _, vid := range ev.Scope {
			if _, size := c.distFor(int32(vid)); size > maxK {
				maxK = size
			}
		}
		c.evAux[ev.ID] = maxK
		return kindAllEqual
	default:
		return kindGeneric
	}
}

// cumulative returns the cumulative-sum vector of d exactly as
// dist.Distribution stores it (top entry clamped to 1).
func cumulative(d *dist.Distribution) []float64 {
	out := make([]float64, d.Size())
	acc := 0.0
	for i := 0; i < d.Size(); i++ {
		acc += d.Prob(i)
		out[i] = acc
	}
	out[d.Size()-1] = 1
	return out
}

// enabled gates the For cache process-wide; kernels default to on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether kernels are enabled process-wide.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns the kernel path on or off process-wide and returns the
// previous setting. With kernels disabled, For returns nil and every caller
// runs the generic path — the differential tests use this to pit the two
// paths against each other. Intended for tests and diagnostics; flip it only
// between runs, not while one is in flight.
func SetEnabled(v bool) bool { return enabled.Swap(v) }

// forCacheCap bounds the compile cache. Instances are immutable and usually
// long-lived, but services compile transient instances too; a small cap with
// arbitrary eviction keeps the cache from growing without bound while still
// making repeated runs over the same instance free.
const forCacheCap = 64

var (
	forMu    sync.Mutex
	forCache = make(map[*model.Instance]*Compiled)
)

// For returns the compiled kernel for inst, compiling and caching it on
// first use. It returns nil when kernels are disabled process-wide or the
// instance cannot be compiled; callers must treat nil as "use the generic
// path". Concurrent callers may compile the same instance twice; the result
// is identical either way.
func For(inst *model.Instance) *Compiled {
	if inst == nil || !Enabled() {
		return nil
	}
	forMu.Lock()
	c, ok := forCache[inst]
	forMu.Unlock()
	if ok {
		return c
	}
	c, err := Compile(inst)
	if err != nil {
		c = nil // cache the failure so it is not recompiled every call
	}
	forMu.Lock()
	if len(forCache) >= forCacheCap {
		for k := range forCache {
			delete(forCache, k)
			break
		}
	}
	forCache[inst] = c
	forMu.Unlock()
	return c
}
