// Package lll is a library for constructive and distributed Lovász Local
// Lemma (LLL) solving under exponential criteria, reproducing
//
//	"A Sharp Threshold Phenomenon for the Distributed Complexity of the
//	 Lovász Local Lemma" (Brandt, Maus, Uitto — PODC 2019).
//
// # What the library does
//
// Given an LLL instance — discrete random variables plus "bad events" over
// them, with symmetric failure bound p, dependency degree d and variable
// rank r (the number of events a variable affects) — the library provides:
//
//   - Sequential deterministic fixing (Theorems 1.1 and 1.3): a local
//     process that fixes variables one by one, in ANY order, never
//     revisiting a value, and provably avoids all bad events whenever
//     p < 2^-d and r ≤ 3. The r = 3 case uses the paper's property P*
//     bookkeeping and the representable-triple geometry (the f(a,b) surface,
//     its convexity, and the incurvedness of S_rep).
//   - Distributed deterministic fixing (Corollaries 1.2 and 1.4): the same
//     processes parallelized over colour classes of the dependency graph,
//     running as message-passing machines on a faithful synchronous
//     LOCAL-model runtime in O(poly d + log* n) rounds.
//   - Randomized baselines: sequential and parallel Moser-Tardos
//     resampling, and one-shot sampling.
//   - Application builders: sinkless orientation (the problem sitting
//     exactly at the threshold), relaxed sinkless orientation, rank-3
//     hypergraph multi-orientations, and relaxed weak splitting.
//   - An experiment harness regenerating both figures of the paper and a
//     table per theorem/corollary claim (see EXPERIMENTS.md).
//
// # The sharp threshold
//
// The headline result is a phase transition at p = 2^-d: strictly below the
// threshold the LLL is solvable deterministically in O(poly d + log* n)
// rounds (this library does it), while at or above it, Ω(log n)
// deterministic and Ω(log log n) randomized rounds are required. The
// Threshold experiment (cmd/threshold) makes the transition tangible: the
// fixer's certified bound p·2^d approaches 1 and adversarial tie-breaking
// starts producing actual failures exactly at margin 1.
//
// # Quick start
//
//	g := lll.NewCycle(64)                           // dependency topology
//	s, _ := lll.NewSinkless(g, 0.2)                 // relaxed sinkless orientation
//	res, _ := lll.Solve(s.Instance, lll.Options{})  // deterministic fixing
//	fmt.Println(res.Stats.FinalViolatedEvents)      // 0 — guaranteed
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package lll
