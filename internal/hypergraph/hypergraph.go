// Package hypergraph provides the hypergraph substrate of the reproduction.
//
// In the paper's formulation (Section 3), the hypergraph H = (V, F) has one
// node per bad event and one hyperedge per random variable, connecting
// exactly the events that depend on the variable. The rank of H — the size
// of its largest hyperedge — is the parameter r: the maximum number of
// events any variable affects. The paper's results concern r = 2
// (Theorem 1.1) and r = 3 (Theorem 1.3).
package hypergraph

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/prng"
)

var (
	// ErrNodeRange indicates a hyperedge member outside [0, N).
	ErrNodeRange = errors.New("hypergraph: node out of range")
	// ErrEmptyEdge indicates a hyperedge with no members.
	ErrEmptyEdge = errors.New("hypergraph: empty hyperedge")
	// ErrDuplicateMember indicates a hyperedge listing a node twice.
	ErrDuplicateMember = errors.New("hypergraph: duplicate member in hyperedge")
)

// Hypergraph is an immutable hypergraph on nodes 0..N-1 with hyperedges
// identified by dense integers 0..M-1. Parallel hyperedges (two hyperedges
// with identical member sets) are allowed: they model distinct random
// variables affecting the same set of events.
type Hypergraph struct {
	n        int
	edges    [][]int // sorted member lists
	incident [][]int // node -> hyperedge IDs
}

// Builder accumulates hyperedges and produces an immutable Hypergraph.
type Builder struct {
	n     int
	edges [][]int
}

// NewBuilder returns a builder for a hypergraph on n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records a hyperedge over the given members (order irrelevant).
func (b *Builder) AddEdge(members ...int) error {
	if len(members) == 0 {
		return ErrEmptyEdge
	}
	sorted := make([]int, len(members))
	copy(sorted, members)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v < 0 || v >= b.n {
			return fmt.Errorf("%w: %d with n=%d", ErrNodeRange, v, b.n)
		}
		if i > 0 && sorted[i-1] == v {
			return fmt.Errorf("%w: node %d", ErrDuplicateMember, v)
		}
	}
	b.edges = append(b.edges, sorted)
	return nil
}

// Build finalizes the hypergraph. The builder must not be used afterwards.
func (b *Builder) Build() *Hypergraph {
	h := &Hypergraph{
		n:        b.n,
		edges:    b.edges,
		incident: make([][]int, b.n),
	}
	for id, members := range b.edges {
		for _, v := range members {
			h.incident[v] = append(h.incident[v], id)
		}
	}
	return h
}

// N returns the number of nodes.
func (h *Hypergraph) N() int { return h.n }

// M returns the number of hyperedges.
func (h *Hypergraph) M() int { return len(h.edges) }

// Edge returns the sorted member list of hyperedge id. The returned slice is
// shared; callers must not modify it.
func (h *Hypergraph) Edge(id int) []int { return h.edges[id] }

// EdgeCopy returns a fresh copy of the member list of hyperedge id.
func (h *Hypergraph) EdgeCopy(id int) []int {
	out := make([]int, len(h.edges[id]))
	copy(out, h.edges[id])
	return out
}

// Rank returns the size of the largest hyperedge (0 for an edgeless graph).
func (h *Hypergraph) Rank() int {
	r := 0
	for _, e := range h.edges {
		if len(e) > r {
			r = len(e)
		}
	}
	return r
}

// Degree returns the number of hyperedges containing node v.
func (h *Hypergraph) Degree(v int) int { return len(h.incident[v]) }

// MaxDegree returns the maximum node degree.
func (h *Hypergraph) MaxDegree() int {
	m := 0
	for v := 0; v < h.n; v++ {
		if d := h.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// Incident returns the identifiers of the hyperedges containing v, in
// insertion order. The returned slice is freshly allocated.
func (h *Hypergraph) Incident(v int) []int {
	out := make([]int, len(h.incident[v]))
	copy(out, h.incident[v])
	return out
}

// Contains reports whether hyperedge id contains node v.
func (h *Hypergraph) Contains(id, v int) bool {
	members := h.edges[id]
	i := sort.SearchInts(members, v)
	return i < len(members) && members[i] == v
}

// DependencyGraph returns the dependency graph of the LLL instance encoded
// by h: one node per hypergraph node (event), with two events adjacent iff
// they share a hyperedge (variable). Parallel hyperedges collapse to a
// single dependency edge.
func (h *Hypergraph) DependencyGraph() *graph.Graph {
	b := graph.NewBuilder(h.n)
	for _, members := range h.edges {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if !b.HasEdge(members[i], members[j]) {
					if err := b.AddEdge(members[i], members[j]); err != nil {
						panic(err) // members validated at AddEdge time
					}
				}
			}
		}
	}
	return b.Build()
}

// DependencyDegree returns the maximum degree of the dependency graph, i.e.
// the LLL parameter d of the instance encoded by h.
func (h *Hypergraph) DependencyDegree() int {
	return h.DependencyGraph().MaxDegree()
}

// FromGraph returns the rank-2 hypergraph whose hyperedges are exactly the
// edges of g, preserving edge identifiers. This encodes the r = 2 setting of
// Section 2, where every random variable sits on one edge of the dependency
// graph.
func FromGraph(g *graph.Graph) *Hypergraph {
	b := NewBuilder(g.N())
	for _, e := range g.Edges() {
		if err := b.AddEdge(e.U, e.V); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// RandomRegularRank3 returns a random 3-uniform hypergraph on n nodes where
// every node lies in exactly deg hyperedges, built with a configuration
// model with restarts. It requires n*deg divisible by 3 and returns an error
// if no valid configuration is found.
func RandomRegularRank3(n, deg int, r *prng.Rand) (*Hypergraph, error) {
	return RandomRegularUniform(n, deg, 3, r)
}

// RandomRegularUniform returns a random k-uniform hypergraph on n nodes
// where every node lies in exactly deg hyperedges, built with a
// configuration model with restarts. It requires n*deg divisible by k.
func RandomRegularUniform(n, deg, k int, r *prng.Rand) (*Hypergraph, error) {
	const maxRestarts = 2000
	if k < 2 {
		return nil, fmt.Errorf("hypergraph: RandomRegularUniform: rank %d < 2", k)
	}
	if n < k || deg < 1 {
		return nil, fmt.Errorf("hypergraph: RandomRegularUniform(%d, %d, %d): need n >= k, deg >= 1", n, deg, k)
	}
	if n*deg%k != 0 {
		return nil, fmt.Errorf("hypergraph: RandomRegularUniform(%d, %d, %d): n*deg must be divisible by k", n, deg, k)
	}
	stubs := make([]int, 0, n*deg)
	members := make([]int, k)
	for attempt := 0; attempt < maxRestarts; attempt++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for i := 0; i < deg; i++ {
				stubs = append(stubs, v)
			}
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		b := NewBuilder(n)
		ok := true
		for i := 0; ok && i < len(stubs); i += k {
			copy(members, stubs[i:i+k])
			if err := b.AddEdge(members...); err != nil {
				ok = false
			}
		}
		if ok {
			return b.Build(), nil
		}
	}
	return nil, fmt.Errorf("hypergraph: RandomRegularUniform(%d, %d, %d): no valid configuration after %d restarts", n, deg, k, maxRestarts)
}

// RandomMixedRank returns a random hypergraph on n nodes with (up to) m
// hyperedges of sizes drawn uniformly from [minSize, maxSize], where every
// node lies in at most maxDeg hyperedges. Fewer than m edges may be
// produced when the degree budget runs out.
func RandomMixedRank(n, m, maxDeg, minSize, maxSize int, r *prng.Rand) (*Hypergraph, error) {
	if minSize < 2 || maxSize < minSize || maxSize > n {
		return nil, fmt.Errorf("hypergraph: RandomMixedRank: bad size range [%d, %d] for n=%d", minSize, maxSize, n)
	}
	b := NewBuilder(n)
	degree := make([]int, n)
	added := 0
	members := make([]int, 0, maxSize)
	for attempts := 0; added < m && attempts < 40*m+100; attempts++ {
		k := minSize + r.Intn(maxSize-minSize+1)
		members = members[:0]
		seen := make(map[int]bool, k)
		ok := true
		for len(members) < k {
			v := r.Intn(n)
			if seen[v] {
				ok = false
				break
			}
			if degree[v] >= maxDeg {
				ok = false
				break
			}
			seen[v] = true
			members = append(members, v)
		}
		if !ok {
			continue
		}
		if err := b.AddEdge(members...); err != nil {
			continue
		}
		for _, v := range members {
			degree[v]++
		}
		added++
	}
	return b.Build(), nil
}

// RandomRank3 returns a random rank-3 hypergraph on n nodes with m
// hyperedges where every node lies in at most maxDeg hyperedges. Hyperedges
// are 3-uniform. Fewer than m edges may be produced if the degree budget
// runs out.
func RandomRank3(n, m, maxDeg int, r *prng.Rand) *Hypergraph {
	b := NewBuilder(n)
	if n < 3 || maxDeg < 1 {
		return b.Build()
	}
	degree := make([]int, n)
	added := 0
	for attempts := 0; added < m && attempts < 30*m+100; attempts++ {
		u, v, w := r.Intn(n), r.Intn(n), r.Intn(n)
		if u == v || v == w || u == w {
			continue
		}
		if degree[u] >= maxDeg || degree[v] >= maxDeg || degree[w] >= maxDeg {
			continue
		}
		if err := b.AddEdge(u, v, w); err != nil {
			continue
		}
		degree[u]++
		degree[v]++
		degree[w]++
		added++
	}
	return b.Build()
}

// TriangleCover returns the rank-3 hypergraph on the node set of g with one
// hyperedge per triangle of g. It is useful for building r = 3 instances
// whose dependency graph is (a subgraph of) g.
func TriangleCover(g *graph.Graph) *Hypergraph {
	b := NewBuilder(g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if w <= v || !g.HasEdge(u, w) {
					continue
				}
				if err := b.AddEdge(u, v, w); err != nil {
					panic(err)
				}
			}
		}
	}
	return b.Build()
}

// DOT renders the hypergraph in Graphviz DOT format using the standard
// bipartite convention: round nodes for hypergraph nodes, boxes for
// hyperedges.
func (h *Hypergraph) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s {\n", name)
	for v := 0; v < h.n; v++ {
		fmt.Fprintf(&sb, "  n%d [shape=circle];\n", v)
	}
	for id := range h.edges {
		fmt.Fprintf(&sb, "  e%d [shape=box];\n", id)
	}
	for id, members := range h.edges {
		for _, v := range members {
			fmt.Fprintf(&sb, "  n%d -- e%d;\n", v, id)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
