package core

import (
	"repro/internal/kernel"
	"repro/internal/model"
)

// oracle is the conditional-probability backend the fixers drive their
// decisions through. With a compiled kernel it answers Inc / CondProb /
// CountViolated from the flat closed-form tables (allocation-free and
// bitwise identical to the generic engine); without one — kernels disabled
// or the instance not compilable — it delegates to the instance itself.
// Both the sequential fixer and the distributed machines query the same
// oracle type, preserving the guarantee that the two implementations make
// identical choices from identical local views.
type oracle struct {
	inst *model.Instance
	k    *kernel.Compiled // nil: generic path
}

// newOracle returns the oracle for inst, kernel-backed when available.
func newOracle(inst *model.Instance) oracle {
	return oracle{inst: inst, k: kernel.For(inst)}
}

// Inc is model.Instance.Inc: the probability increase factor of event id
// when variable varID is fixed to value (0 when the base probability is 0).
func (o oracle) Inc(id int, a *model.Assignment, varID, value int) float64 {
	if o.k != nil {
		return o.k.Inc(id, a, varID, value)
	}
	return o.inst.Inc(id, a, varID, value)
}

// CondProb is model.Instance.CondProb.
func (o oracle) CondProb(id int, a *model.Assignment) float64 {
	if o.k != nil {
		return o.k.CondProb(id, a)
	}
	return o.inst.CondProb(id, a)
}

// CountViolated is model.Instance.CountViolated.
func (o oracle) CountViolated(a *model.Assignment) (int, error) {
	if o.k != nil {
		return o.k.CountViolatedModel(a)
	}
	return o.inst.CountViolated(a)
}
