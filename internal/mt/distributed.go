package mt

import (
	"fmt"
	"sort"

	"repro/internal/local"
	"repro/internal/model"
	"repro/internal/prng"
)

// This file implements the parallel Moser-Tardos resampler as an actual
// message-passing algorithm on the LOCAL runtime — the "straightforward
// distributed implementation" the paper's related-work section attributes
// O(log² n) rounds to. One resampling iteration takes three LOCAL rounds:
//
//	round A: every variable's owner (its lowest affected event) broadcasts
//	         the variable's current value;
//	round B: every node evaluates its own event and broadcasts whether it
//	         is violated;
//	round C: violated nodes that are local minima (by ID) among violated
//	         neighbours resample ALL their scope variables and broadcast
//	         the new values, which the owners adopt.
//
// Local minima among violated events are pairwise non-adjacent, so the
// resampled scopes are disjoint and the parallel step is well defined.
//
// The machines execute on the LOCAL runtime's sharded worker-pool engine
// (internal/engine); lopts.Workers selects the worker count and the result
// is bit-for-bit identical for every value, because each machine's state,
// outbox and RNG stream are owned by its node index.

// mtValueMsg carries variable values (A/C rounds).
type mtValueMsg map[int]int

// mtFlagMsg carries the sender's violated flag together with its ID
// (B round).
type mtFlagMsg struct {
	id       uint64
	violated bool
}

// mtMachine is the per-event machine of the distributed resampler.
type mtMachine struct {
	inst      *model.Instance
	me        int
	seed      uint64
	maxIters  int
	rng       *prng.Rand
	info      local.NodeInfo
	vals      map[int]int // current values of all scope variables of my event and my owned variables
	owned     []int       // variables whose lowest affected event is me
	scope     []int
	violated  bool
	iterDone  bool // my event was satisfied at the last check
	resamples int
	err       error
}

func (m *mtMachine) Init(info local.NodeInfo) {
	m.info = info
	m.rng = prng.New(m.seed ^ info.ID ^ 0x9e3779b97f4a7c15)
	m.vals = make(map[int]int)
	m.scope = append([]int(nil), m.inst.Event(m.me).Scope...)
	for vid := 0; vid < m.inst.NumVars(); vid++ {
		events := m.inst.Var(vid).Events
		if len(events) == 0 {
			continue
		}
		lowest := events[0]
		for _, e := range events[1:] {
			if e < lowest {
				lowest = e
			}
		}
		if lowest == m.me {
			m.owned = append(m.owned, vid)
		}
	}
	sort.Ints(m.owned)
	// Initial sampling of owned variables.
	for _, vid := range m.owned {
		m.vals[vid] = m.inst.Var(vid).Dist.Sample(m.rng)
	}
}

func (m *mtMachine) totalRounds() int { return 3 * m.maxIters }

// broadcastVals sends the given variable values to every port.
func (m *mtMachine) broadcastVals(vids []int) []local.Message {
	msg := make(mtValueMsg, len(vids))
	for _, vid := range vids {
		msg[vid] = m.vals[vid]
	}
	send := make([]local.Message, m.info.Degree())
	for i := range send {
		send[i] = msg
	}
	return send
}

func (m *mtMachine) mergeVals(recv []local.Message) error {
	for _, raw := range recv {
		if raw == nil {
			continue
		}
		msg, ok := raw.(mtValueMsg)
		if !ok {
			return fmt.Errorf("mt: unexpected message type %T", raw)
		}
		for vid, val := range msg {
			m.vals[vid] = val
		}
	}
	return nil
}

func (m *mtMachine) Round(round int, recv []local.Message) ([]local.Message, bool) {
	if m.err != nil {
		return nil, true
	}
	phase := (round - 1) % 3
	switch phase {
	case 0:
		// Round A: broadcast owned values. (Also fold in values broadcast
		// by resamplers in the previous C round.)
		if err := m.mergeVals(recv); err != nil {
			m.err = err
			return nil, true
		}
		return m.broadcastVals(m.owned), false
	case 1:
		// Round B: fold in neighbour values, evaluate my event, broadcast
		// the flag.
		if err := m.mergeVals(recv); err != nil {
			m.err = err
			return nil, true
		}
		vals := make([]int, len(m.scope))
		for i, vid := range m.scope {
			v, ok := m.vals[vid]
			if !ok {
				m.err = fmt.Errorf("mt: node %d missing value of variable %d", m.me, vid)
				return nil, true
			}
			vals[i] = v
		}
		m.violated = m.inst.Event(m.me).Bad(vals)
		send := make([]local.Message, m.info.Degree())
		for i := range send {
			send[i] = mtFlagMsg{id: m.info.ID, violated: m.violated}
		}
		return send, false
	default:
		// Round C: local minima among violated events resample their
		// whole scope and broadcast the new values.
		resample := m.violated
		if resample {
			for _, raw := range recv {
				flag, ok := raw.(mtFlagMsg)
				if !ok {
					m.err = fmt.Errorf("mt: unexpected message type %T", raw)
					return nil, true
				}
				if flag.violated && flag.id < m.info.ID {
					resample = false
					break
				}
			}
		}
		done := round >= m.totalRounds()
		if !resample {
			return nil, done
		}
		m.resamples++
		for _, vid := range m.scope {
			m.vals[vid] = m.inst.Var(vid).Dist.Sample(m.rng)
		}
		return m.broadcastVals(m.scope), done
	}
}

// DistResult is the outcome of a distributed Moser-Tardos run.
type DistResult struct {
	Assignment *model.Assignment
	Satisfied  bool
	// Rounds is the LOCAL-round count (3 per resampling iteration).
	Rounds int
	// Iterations is the number of resampling iterations executed.
	Iterations int
	// Resamplings counts event resamplings across all nodes.
	Resamplings int
	Messages    int
	// LocalStats is the underlying LOCAL runtime's execution record. On a
	// failed run it holds the partial stats up to the failure.
	LocalStats local.Stats
}

// Distributed runs the parallel Moser-Tardos resampler as a LOCAL algorithm
// on the instance's dependency graph for exactly maxIters iterations
// (0 means 200) and reports whether the final assignment avoids all events.
// Under ep(d+1) < 1 a logarithmic number of iterations suffices with high
// probability; callers inspect Satisfied.
//
// Note the fixed iteration budget: LOCAL nodes cannot detect global
// success without Θ(diameter) rounds, so the classic implementation runs
// for a precomputed bound. This is exactly why the paper's deterministic
// O(poly d + log* n) result is interesting.
//
// Cancellation: when lopts.Ctx is set and becomes done, the underlying
// LOCAL run stops between rounds and Distributed returns the partial
// DistResult (round/message accounting and LocalStats up to the last
// completed round, no Assignment) together with an error wrapping
// ctx.Err().
func Distributed(inst *model.Instance, seed uint64, maxIters int, lopts local.Options) (*DistResult, error) {
	if maxIters == 0 {
		maxIters = 200
	}
	g := inst.DependencyGraph()
	machines := make([]*mtMachine, g.N())
	stats, err := local.Run(g, func(v int) local.Machine {
		machines[v] = &mtMachine{inst: inst, me: v, seed: seed, maxIters: maxIters}
		return machines[v]
	}, lopts)
	if err != nil {
		// Partial result: the runtime's Stats are well defined up to the
		// failing round, so surface them (localsim prints them on failure).
		return &DistResult{Rounds: stats.Rounds, Messages: stats.MessagesSent, LocalStats: stats}, err
	}
	a := model.NewAssignment(inst)
	resamples := 0
	for v, m := range machines {
		if m.err != nil {
			return nil, fmt.Errorf("mt: node %d failed: %w", v, m.err)
		}
		resamples += m.resamples
		for _, vid := range m.owned {
			a.Fix(vid, m.vals[vid])
		}
	}
	for vid := 0; vid < inst.NumVars(); vid++ {
		if !a.Fixed(vid) {
			if len(inst.Var(vid).Events) != 0 {
				return nil, fmt.Errorf("mt: variable %d has no owner", vid)
			}
			a.Fix(vid, inst.Var(vid).Dist.Sample(prng.New(seed)))
		}
	}
	violated, err := violatedEvents(inst, a, nil)
	if err != nil {
		return nil, err
	}
	return &DistResult{
		Assignment:  a,
		Satisfied:   len(violated) == 0,
		Rounds:      stats.Rounds,
		Iterations:  maxIters,
		Resamplings: resamples,
		Messages:    stats.MessagesSent,
		LocalStats:  stats,
	}, nil
}
