package exp

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/mt"
	"repro/internal/prng"
)

// T10Spectrum explores the question the paper's introduction poses for
// future work: "What bounds can we achieve for LLL criteria between
// exponential and polynomial?" It sweeps the per-event failure probability
// p of degree-d sinkless-orientation-with-alarm instances through the
// polynomial family p = d^-c and reports, for every exponent c:
//
//   - the exponential margin p·2^d (the paper's guarantee needs < 1),
//   - the symmetric Moser-Tardos value e·p·(d+1) (MT's guarantee needs < 1),
//   - what the deterministic fixer actually does without a guarantee, and
//   - the randomized cost.
//
// The table makes the regimes visible: polynomial criteria with small c sit
// far above the exponential threshold (deterministic guarantee gone, MT
// fine), and only once d^-c drops below 2^-d — i.e. c > d/log₂d — does the
// paper's deterministic regime begin.
func T10Spectrum(seed uint64, sz Sizes) (*Table, error) {
	t := &Table{
		ID:    "T10",
		Title: "Criterion spectrum - polynomial p = d^-c vs the exponential threshold (d = 6)",
		Note: "det-guarantee requires p*2^d < 1 (c > d/log2 d ~ 2.32 for d = 6); MT-guarantee requires " +
			"e*p*(d+1) < 1 (c >= 2 here). Between the two lies the regime where only the paper's " +
			"deterministic result applies; below both, only heuristics. 'det viol' is what the greedy " +
			"fixer does WITHOUT a guarantee; 'MT resamplings' is the randomized cost (avg).",
		Header: []string{"c", "p = d^-c", "p*2^d", "e*p*(d+1)", "det guarantee", "MT guarantee", "det viol", "MT resamplings"},
	}
	const d = 6
	r := prng.New(seed)
	n := sz.scale(24)
	if n < d+2 {
		n = d + 2
	}
	if n*d%2 != 0 {
		n++
	}
	g, err := graph.RandomRegular(n, d, r)
	if err != nil {
		return nil, err
	}
	trials := sz.trials(10)
	base := math.Pow(2, -float64(d))
	for _, c := range []float64{1, 1.5, 2, 2.32, 2.5, 3} {
		p := math.Pow(float64(d), -c)
		expMargin := p * math.Pow(2, float64(d))
		mtValue := math.E * p * float64(d+1)

		var inst *appInstance
		switch {
		case p > base:
			s, err := apps.NewNoisySinklessWithP(g, p)
			if err != nil {
				return nil, err
			}
			inst = &appInstance{inst: s.Instance}
		default:
			// Below the threshold: realize p with the slack relaxation,
			// margin = p·2^d.
			s, err := apps.NewSinklessWithMargin(g, expMargin)
			if err != nil {
				return nil, err
			}
			inst = &appInstance{inst: s.Instance}
		}
		if got := inst.inst.P(); math.Abs(got-p) > 1e-9 {
			return nil, fmt.Errorf("exp: T10 c=%v: realized p=%v, want %v", c, got, p)
		}

		det, err := core.FixSequential(inst.inst, nil, sz.copts(0))
		if err != nil {
			return nil, err
		}
		resamples := 0
		for i := 0; i < trials; i++ {
			res, err := mt.Sequential(inst.inst, r.Split(), 0)
			if err != nil {
				return nil, err
			}
			if !res.Satisfied {
				return nil, fmt.Errorf("exp: T10 c=%v: MT failed", c)
			}
			resamples += res.Resamplings
		}
		t.AddRow(c, p, expMargin, mtValue,
			expMargin < 1, mtValue < 1,
			det.Stats.FinalViolatedEvents,
			float64(resamples)/float64(trials))
		if expMargin < 1 && det.Stats.FinalViolatedEvents != 0 {
			return t, fmt.Errorf("exp: T10 c=%v: violations below the threshold", c)
		}
	}
	return t, nil
}

type appInstance struct {
	inst *model.Instance
}
