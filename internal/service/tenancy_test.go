package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/tenant"
)

// mustTenants parses a tenant policy through the real parser so tests get
// the same normalization (defaults, sorting) the daemon gets.
func mustTenants(t *testing.T, cfg string) *tenant.Config {
	t.Helper()
	tc, err := tenant.ParseConfig([]byte(cfg))
	if err != nil {
		t.Fatalf("tenant config: %v", err)
	}
	return tc
}

// tenantRunner is a stubRunner variant that reports which TENANT started
// (the fairness suite dispatches on that, not the family).
type tenantRunner struct {
	started chan string
	release chan struct{}
}

func newTenantRunner() *tenantRunner {
	return &tenantRunner{started: make(chan string, 2048), release: make(chan struct{}, 2048)}
}

func (r *tenantRunner) run(ctx context.Context, js JobSpec, att Attempt, emit func(Event)) (*Summary, error) {
	r.started <- js.Tenant
	select {
	case <-r.release:
		return &Summary{Algorithm: js.Algorithm, Satisfied: true}, nil
	case <-ctx.Done():
		return &Summary{Algorithm: js.Algorithm}, fmt.Errorf("stub stopped: %w", ctx.Err())
	}
}

// nextStart releases one run slot and reports which tenant the scheduler
// dispatched into it.
func (r *tenantRunner) nextStart(t *testing.T) string {
	t.Helper()
	r.release <- struct{}{}
	select {
	case tn := <-r.started:
		return tn
	case <-time.After(5 * time.Second):
		t.Fatal("no dispatch within 5s")
		return ""
	}
}

// TestTenantWFQSharesService: under saturation (every tenant backlogged),
// dispatch shares converge to the declared weight ratios within 10%. This
// is the service-level twin of the queue-level property test in
// internal/tenant — it pins that Submit/scheduler wiring preserves the
// stride order.
func TestTenantWFQSharesService(t *testing.T) {
	tc := mustTenants(t, `{"tenants":[
		{"name":"a","weight":1},{"name":"b","weight":2},{"name":"c","weight":4}]}`)
	r := newTenantRunner()
	s := New(Config{QueueCap: 1024, MaxInFlight: 1, Tenancy: tc, Runner: r.run})
	defer s.Shutdown(context.Background())

	// Occupy the single worker so the backlog builds while nothing pops.
	if _, err := s.Submit(JobSpec{Tenant: "a"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-r.started:
	case <-time.After(5 * time.Second):
		t.Fatal("pilot job never started")
	}
	const perTenant = 100
	for i := 0; i < perTenant; i++ {
		for _, tn := range []string{"a", "b", "c"} {
			if _, err := s.Submit(JobSpec{Tenant: tn}); err != nil {
				t.Fatalf("submit %s[%d]: %v", tn, i, err)
			}
		}
	}
	r.release <- struct{}{} // let the pilot finish

	// Count the next 70 dispatches: every tenant stays backlogged
	// (70·4/7 = 40 < 100), so shares must track weights 1:2:4.
	counts := map[string]int{}
	const window = 70
	for i := 0; i < window; i++ {
		counts[r.nextStart(t)]++
	}
	want := map[string]float64{"a": 1.0 / 7, "b": 2.0 / 7, "c": 4.0 / 7}
	for tn, frac := range want {
		got := float64(counts[tn]) / window
		if rel := (got - frac) / frac; rel < -0.10 || rel > 0.10 {
			t.Errorf("tenant %s share = %.3f (want %.3f ±10%%); counts=%v", tn, got, frac, counts)
		}
	}

	close(r.release) // drain the rest
}

// TestTenantPriorityService: a higher priority class preempts (in queue
// order) any lower class regardless of weights.
func TestTenantPriorityService(t *testing.T) {
	tc := mustTenants(t, `{"tenants":[
		{"name":"bulk","weight":1000},{"name":"rt","weight":1,"priority":3}]}`)
	r := newTenantRunner()
	s := New(Config{QueueCap: 256, MaxInFlight: 1, Tenancy: tc, Runner: r.run})
	defer s.Shutdown(context.Background())

	if _, err := s.Submit(JobSpec{Tenant: "bulk"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-r.started:
	case <-time.After(5 * time.Second):
		t.Fatal("pilot job never started")
	}
	for i := 0; i < 20; i++ {
		s.Submit(JobSpec{Tenant: "bulk"})
	}
	for i := 0; i < 5; i++ {
		s.Submit(JobSpec{Tenant: "rt"})
	}
	r.release <- struct{}{}
	for i := 0; i < 5; i++ {
		if tn := r.nextStart(t); tn != "rt" {
			t.Fatalf("dispatch %d = %q, want rt (strict priority)", i, tn)
		}
	}
	if tn := r.nextStart(t); tn != "bulk" {
		t.Fatalf("post-priority dispatch = %q, want bulk", tn)
	}
	close(r.release)
}

// TestTenantRateLimitIsolation: an adversarial tenant hammering far past
// its rate is throttled at admission with per-tenant accounting, while a
// well-behaved tenant's submissions are entirely unaffected.
func TestTenantRateLimitIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	tc := mustTenants(t, `{"tenants":[
		{"name":"good"},{"name":"abuser","rate":5,"burst":2,"max_queued":4}]}`)
	r := newTenantRunner()
	s := New(Config{QueueCap: 256, MaxInFlight: 1, Tenancy: tc, Metrics: reg, Runner: r.run})
	defer s.Shutdown(context.Background())

	// Hold the worker on a good job so admitted jobs stay queued.
	if _, err := s.Submit(JobSpec{Tenant: "good"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-r.started:
	case <-time.After(5 * time.Second):
		t.Fatal("pilot job never started")
	}

	admitted, throttled := 0, 0
	for i := 0; i < 40; i++ {
		_, err := s.Submit(JobSpec{Tenant: "abuser"})
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrRateLimited):
			throttled++
			if ra := retryAfterSeconds(err); ra < 1 {
				t.Fatalf("rate-limit Retry-After = %d, want >= 1", ra)
			}
		case errors.Is(err, ErrQuotaExceeded):
			// Burst landed in the queue faster than tokens refilled and hit
			// max_queued; also a correct rejection.
		default:
			t.Fatalf("abuser submit %d: unexpected error %v", i, err)
		}
	}
	if admitted > 4 {
		t.Errorf("abuser got %d jobs admitted, want <= burst+refill (4)", admitted)
	}
	if throttled < 30 {
		t.Errorf("abuser throttled %d times, want >= 30", throttled)
	}

	// The good tenant is untouched: every submission admits.
	goodJobs := 10
	for i := 0; i < goodJobs; i++ {
		if _, err := s.Submit(JobSpec{Tenant: "good"}); err != nil {
			t.Fatalf("good submit %d rejected: %v", i, err)
		}
	}
	close(r.release)
	waitCounter(t, reg, "tenant_good_done_total", int64(goodJobs+1))

	if got := reg.Counter("tenant_good_throttled_total").Value(); got != 0 {
		t.Errorf("good tenant throttled %d times, want 0", got)
	}
	if got := reg.Counter("tenant_abuser_throttled_total").Value(); got != int64(throttled) {
		t.Errorf("tenant_abuser_throttled_total = %d, want %d", got, throttled)
	}
	if got := reg.Counter("tenant_good_admitted_total").Value(); got != int64(goodJobs+1) {
		t.Errorf("tenant_good_admitted_total = %d, want %d", got, goodJobs+1)
	}
}

// waitCounter polls a registry counter until it reaches want.
func waitCounter(t *testing.T, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter(name).Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d within 5s", name, reg.Counter(name).Value(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTenantInFlightQuotaService: max_in_flight counts admitted-but-not-
// terminal jobs; the quota frees exactly when a job goes terminal.
func TestTenantInFlightQuotaService(t *testing.T) {
	tc := mustTenants(t, `{"tenants":[{"name":"q","max_in_flight":1}]}`)
	r := newTenantRunner()
	s := New(Config{QueueCap: 16, MaxInFlight: 2, Tenancy: tc, Runner: r.run})
	defer s.Shutdown(context.Background())

	a, err := s.Submit(JobSpec{Tenant: "q"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Tenant: "q"}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second submit err = %v, want ErrQuotaExceeded", err)
	}
	select {
	case <-r.started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}
	r.release <- struct{}{}
	waitState(t, a, StateDone)
	b, err := s.Submit(JobSpec{Tenant: "q"})
	if err != nil {
		t.Fatalf("submit after release: %v", err)
	}
	select {
	case <-r.started:
	case <-time.After(5 * time.Second):
		t.Fatal("job b never started")
	}
	r.release <- struct{}{}
	waitState(t, b, StateDone)
}

// TestTenantDeadlineShed: once a tenant's live p99 run latency exceeds a
// job's deadline, the job is shed at admission — it never reaches the
// queue or the engine (zero runner invocations) — while deadline-free jobs
// and healthy tenants admit normally.
func TestTenantDeadlineShed(t *testing.T) {
	reg := obs.NewRegistry()
	tc := mustTenants(t, `{"tenants":[{"name":"slow"},{"name":"fast"}]}`)
	r := newStubRunner()
	s := New(Config{QueueCap: 16, MaxInFlight: 1, Tenancy: tc, Metrics: reg, Runner: r.run})
	defer s.Shutdown(context.Background())

	// Feed the slow tenant's live-latency objective directly: 30 samples at
	// ~1s each (inside the histogram's bounded buckets), well past the
	// min-sample gate.
	for i := 0; i < 30; i++ {
		s.tenancy.lat.Observe("slow", 1.0, "")
	}
	if _, err := s.Submit(JobSpec{Tenant: "slow", TimeoutMS: 100}); !errors.Is(err, ErrDeadlineShed) {
		t.Fatalf("doomed submit err = %v, want ErrDeadlineShed", err)
	}
	if got := r.runs.Load(); got != 0 {
		t.Fatalf("shed job reached the engine: %d runs, want 0", got)
	}
	if got := reg.Counter("tenant_slow_shed_total").Value(); got != 1 {
		t.Errorf("tenant_slow_shed_total = %d, want 1", got)
	}
	// A deadline the p99 can meet is admitted.
	if _, err := s.Submit(JobSpec{Tenant: "slow", TimeoutMS: 60_000}); err != nil {
		t.Fatalf("achievable-deadline submit: %v", err)
	}
	// No deadline: never shed.
	if _, err := s.Submit(JobSpec{Tenant: "slow"}); err != nil {
		t.Fatalf("deadline-free submit: %v", err)
	}
	// A different tenant with the same deadline is untouched.
	if _, err := s.Submit(JobSpec{Tenant: "fast", TimeoutMS: 100}); err != nil {
		t.Fatalf("healthy-tenant submit: %v", err)
	}
	// A cold tenant (few samples) is never shed on thin evidence.
	for i := 0; i < tenantShedMinSamples-1; i++ {
		s.tenancy.lat.Observe("fast", 5.0, "")
	}
	if _, err := s.Submit(JobSpec{Tenant: "fast", TimeoutMS: 100}); err != nil {
		t.Fatalf("cold-tenant submit: %v", err)
	}
	close(r.release)
}

// TestTenantUnknownRejected: a strict policy rejects undeclared tenant
// labels with ErrUnknownTenant; allow_unknown folds them into default.
func TestTenantUnknownRejected(t *testing.T) {
	r := newStubRunner()
	strict := New(Config{QueueCap: 4, MaxInFlight: 1, Runner: r.run,
		Tenancy: mustTenants(t, `{"tenants":[{"name":"a"}]}`)})
	defer strict.Shutdown(context.Background())
	if _, err := strict.Submit(JobSpec{Tenant: "nope"}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("strict submit err = %v, want ErrUnknownTenant", err)
	}

	open := New(Config{QueueCap: 4, MaxInFlight: 1, Runner: r.run,
		Tenancy: mustTenants(t, `{"tenants":[{"name":"a"}],"allow_unknown":true}`)})
	defer open.Shutdown(context.Background())
	job, err := open.Submit(JobSpec{Tenant: "nope"})
	if err != nil {
		t.Fatalf("open submit: %v", err)
	}
	if job.tenant != tenant.DefaultName {
		t.Fatalf("open submit accounted to %q, want %q", job.tenant, tenant.DefaultName)
	}
	close(r.release)
}

// TestTenantDifferentialFIFO: with exactly one tenant at weight 1 and no
// quotas, the tenant path is bit-identical to the pre-tenant FIFO service:
// same dispatch order, same final assignment hashes, through the REAL
// runner.
func TestTenantDifferentialFIFO(t *testing.T) {
	const jobs = 6
	runOne := func(tc *tenant.Config, label string) (order []uint64, hashes []uint64) {
		var mu sync.Mutex
		cfg := Config{
			QueueCap: 32, MaxInFlight: 1, MaxWorkersPerJob: 2,
			CacheSize: -1, Tenancy: tc,
			Runner: func(ctx context.Context, js JobSpec, att Attempt, emit func(Event)) (*Summary, error) {
				mu.Lock()
				order = append(order, js.Seed)
				mu.Unlock()
				return RunSpec(ctx, js, att, emit, RunOptions{MaxWorkers: 2})
			},
		}
		s := New(cfg)
		defer s.Shutdown(context.Background())
		var list []*Job
		for i := 0; i < jobs; i++ {
			js := JobSpec{Family: FamilySinkless, N: 48, Margin: 0.9, Algorithm: AlgSeq, Seed: uint64(i + 1)}
			if label != "" {
				js.Tenant = label
			}
			j, err := s.Submit(js)
			if err != nil {
				t.Fatalf("%s submit %d: %v", label, i, err)
			}
			list = append(list, j)
		}
		for _, j := range list {
			waitState(t, j, StateDone)
			hashes = append(hashes, j.View().Result.AssignmentHash)
		}
		return order, hashes
	}

	fifoOrder, fifoHashes := runOne(nil, "")
	tenOrder, tenHashes := runOne(mustTenants(t, `{"tenants":[{"name":"only","weight":1}]}`), "only")

	for i := range fifoOrder {
		if fifoOrder[i] != tenOrder[i] {
			t.Fatalf("dispatch order diverged at %d: fifo=%v tenant=%v", i, fifoOrder, tenOrder)
		}
	}
	for i := range fifoHashes {
		if fifoHashes[i] == 0 {
			t.Fatalf("job %d produced no assignment hash", i)
		}
		if fifoHashes[i] != tenHashes[i] {
			t.Fatalf("assignment hash %d diverged: fifo=%x tenant=%x", i, fifoHashes[i], tenHashes[i])
		}
	}
}

// TestTenantMetricsScrape: the per-tenant metric families round-trip
// through the Prometheus text exposition with the values the counters
// hold.
func TestTenantMetricsScrape(t *testing.T) {
	reg := obs.NewRegistry()
	tc := mustTenants(t, `{"tenants":[{"name":"gold","weight":3},{"name":"sil-ver"}]}`)
	r := newStubRunner()
	s := New(Config{QueueCap: 16, MaxInFlight: 1, Tenancy: tc, Metrics: reg, Runner: r.run})
	defer s.Shutdown(context.Background())

	for i := 0; i < 3; i++ {
		if _, err := s.Submit(JobSpec{Tenant: "gold"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(JobSpec{Tenant: "sil-ver"}); err != nil {
		t.Fatal(err)
	}
	close(r.release)
	waitCounter(t, reg, "tenant_gold_done_total", 3)
	waitCounter(t, reg, "tenant_sil_ver_done_total", 1)

	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	scraped := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		if name, val, ok := strings.Cut(line, " "); ok {
			scraped[name] = val
		}
	}
	want := map[string]string{
		"tenant_gold_admitted_total":    "3",
		"tenant_gold_done_total":        "3",
		"tenant_sil_ver_admitted_total": "1", // dash folded to underscore
		"tenant_sil_ver_done_total":     "1",
		"tenant_gold_throttled_total":   "0",
	}
	for name, val := range want {
		if got, ok := scraped[name]; !ok || got != val {
			t.Errorf("scrape %s = %q (present=%v), want %q", name, got, ok, val)
		}
	}
	// Share gauges exist and sum to ~1 across tenants.
	var shareSum float64
	for _, tn := range []string{"default", "gold", "sil_ver"} {
		v, ok := scraped["tenant_"+tn+"_share"]
		if !ok {
			t.Fatalf("scrape missing tenant_%s_share", tn)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("tenant_%s_share = %q: %v", tn, v, err)
		}
		shareSum += f
	}
	if shareSum < 0.99 || shareSum > 1.01 {
		t.Errorf("share gauges sum to %v, want ~1", shareSum)
	}
}

// TestTenantStatusEndpoint: GET /v1/tenants serves the live per-tenant
// accounting, sorted by name.
func TestTenantStatusEndpoint(t *testing.T) {
	tc := mustTenants(t, `{"tenants":[{"name":"b","weight":2},{"name":"a","rate":100,"max_in_flight":7}]}`)
	r := newStubRunner()
	s := New(Config{QueueCap: 16, MaxInFlight: 1, Tenancy: tc, Metrics: obs.NewRegistry(), Runner: r.run})
	defer s.Shutdown(context.Background())
	h := NewHandler(s, nil)

	for i := 0; i < 2; i++ {
		if _, err := s.Submit(JobSpec{Tenant: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tenants", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /v1/tenants = %d, want 200", rec.Code)
	}
	var sts []TenantStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &sts); err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 || sts[0].Name != "a" || sts[1].Name != "b" || sts[2].Name != "default" {
		t.Fatalf("tenants = %+v, want [a b default]", sts)
	}
	if sts[0].Admitted != 2 || sts[0].InFlight != 2 {
		t.Errorf("tenant a: admitted=%d in_flight=%d, want 2/2", sts[0].Admitted, sts[0].InFlight)
	}
	if sts[1].Weight != 2 {
		t.Errorf("tenant b weight = %d, want 2", sts[1].Weight)
	}
	close(r.release)
}

// TestTenantHTTPRejections: the HTTP layer maps the tenant rejections to
// 429/400/503 with a Retry-After computed from the tenant's own refill
// rate, and X-Tenant headers attribute traffic.
func TestTenantHTTPRejections(t *testing.T) {
	tc := mustTenants(t, `{"tenants":[{"name":"tight","rate":0.5,"burst":1}]}`)
	r := newStubRunner()
	s := New(Config{QueueCap: 16, MaxInFlight: 1, Tenancy: tc, Runner: r.run})
	defer s.Shutdown(context.Background())
	h := NewHandler(s, nil)

	post := func(tenantHeader string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader("{}"))
		if tenantHeader != "" {
			req.Header.Set("X-Tenant", tenantHeader)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := post("tight"); rec.Code != 202 {
		t.Fatalf("first tight submit = %d (%s), want 202", rec.Code, rec.Body)
	}
	rec := post("tight")
	if rec.Code != 429 {
		t.Fatalf("second tight submit = %d, want 429", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "rate limit") {
		t.Errorf("throttle body %q should name the rate limit", rec.Body)
	}
	// rate 0.5/s: one token takes 2s to refill; Retry-After must say so.
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 2 {
		t.Errorf("Retry-After = %q, want >= 2 seconds at rate 0.5", rec.Header().Get("Retry-After"))
	}
	if rec := post("who-dis"); rec.Code != 400 {
		t.Errorf("unknown tenant = %d, want 400", rec.Code)
	}
	close(r.release)
}

// TestAutoTuneService: with AutoTune on, Max workers exist but only the
// current limit run concurrently; the limit gauge reflects it; and with no
// overload signals the limit holds steady.
func TestAutoTuneService(t *testing.T) {
	reg := obs.NewRegistry()
	r := newTenantRunner()
	s := New(Config{QueueCap: 32, MaxInFlight: 2, Metrics: reg, Runner: r.run,
		AutoTune: &AutoTuneConfig{Min: 1, Max: 4, Interval: 20 * time.Millisecond}})
	defer s.Shutdown(context.Background())

	if got := reg.Gauge("service_inflight_limit").Value(); got != 2 {
		t.Fatalf("initial inflight limit gauge = %v, want 2", got)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(JobSpec{}); err != nil {
			t.Fatal(err)
		}
	}
	// Exactly 2 dispatch; a third must not start while the limit holds.
	for i := 0; i < 2; i++ {
		select {
		case <-r.started:
		case <-time.After(5 * time.Second):
			t.Fatalf("dispatch %d never happened", i)
		}
	}
	select {
	case tn := <-r.started:
		t.Fatalf("third job (tenant %q) dispatched past the in-flight limit", tn)
	case <-time.After(100 * time.Millisecond):
	}
	close(r.release)
}

// TestTenantChaosMixedProfiles is the -race chaos tier: three tenant
// profiles (a heavy gold, a steady silver, a rate-limited abuser) submit
// real jobs concurrently under fault injection (shard panics + message
// drops) with retries and random cancels, against the auto-tuner. The
// service must stay consistent: every job terminal, every tenant's
// in-flight quota fully released, queue empty.
func TestTenantChaosMixedProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tier skipped in -short")
	}
	reg := obs.NewRegistry()
	tc := mustTenants(t, `{"tenants":[
		{"name":"gold","weight":4,"priority":1},
		{"name":"silver","weight":2},
		{"name":"abuser","rate":200,"burst":20,"max_queued":16,"max_in_flight":24}]}`)
	s := New(Config{
		QueueCap: 128, MaxInFlight: 3, MaxWorkersPerJob: 2, CacheSize: -1,
		Tenancy: tc, Metrics: reg,
		Fault:             fault.Plan{Seed: 42, PanicRate: 0.03, DropRate: 0.02},
		DefaultMaxRetries: 2,
		RetryBackoff:      time.Millisecond, RetryBackoffMax: 5 * time.Millisecond,
		AutoTune: &AutoTuneConfig{Min: 1, Max: 4, Interval: 25 * time.Millisecond},
	})

	const perTenant = 20
	var (
		mu   sync.Mutex
		jobs []*Job
	)
	var wg sync.WaitGroup
	for ti, tn := range []string{"gold", "silver", "abuser"} {
		wg.Add(1)
		go func(ti int, tn string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + ti)))
			algs := []string{AlgSeq, AlgDist}
			for i := 0; i < perTenant; i++ {
				js := JobSpec{
					Family: FamilySinkless, N: 24, Margin: 0.9,
					Algorithm: algs[i%len(algs)], Seed: uint64(ti*1000 + i + 1),
					Tenant: tn,
				}
				j, err := s.Submit(js)
				if err != nil {
					// Rate/quota rejections are the abuser's expected fate;
					// anything else under this load is a bug.
					if !errors.Is(err, ErrRateLimited) && !errors.Is(err, ErrQuotaExceeded) &&
						!errors.Is(err, ErrQueueFull) {
						t.Errorf("%s submit %d: %v", tn, i, err)
					}
					continue
				}
				mu.Lock()
				jobs = append(jobs, j)
				mu.Unlock()
				if rng.Intn(10) == 0 {
					s.Cancel(j.ID)
				}
				if tn != "abuser" {
					time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				}
			}
		}(ti, tn)
	}
	wg.Wait()

	deadline := time.Now().Add(60 * time.Second)
	for _, j := range jobs {
		for !j.State().Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("job %s (tenant %s) stuck in %q", j.ID, j.tenant, j.State())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// Every admission's in-flight unit must be back.
	waitInFlightDrained(t, s, []string{"gold", "silver", "abuser", "default"})
	if got := s.QueueDepth(); got != 0 {
		t.Errorf("queue depth after drain = %d, want 0", got)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// waitInFlightDrained polls until every tenant's limiter in-flight count
// returns to zero (terminal-state accounting lags job.State() by a few
// instructions in the scheduler).
func waitInFlightDrained(t *testing.T, s *Service, tenants []string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		leaked := ""
		for _, tn := range tenants {
			if n := s.tenancy.limiter.InFlight(tn); n != 0 {
				leaked = fmt.Sprintf("tenant %s holds %d in-flight units", tn, n)
			}
		}
		if leaked == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(leaked)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTenancyDisabledUnchanged: without Config.Tenancy the service behaves
// exactly as before — no tenant gates, single FIFO order, and the status
// endpoint reports one default tenant.
func TestTenancyDisabledUnchanged(t *testing.T) {
	r := newStubRunner()
	s := New(Config{QueueCap: 8, MaxInFlight: 1, Runner: r.run})
	defer s.Shutdown(context.Background())

	// A tenant label on the spec is validated but inert.
	if _, err := s.Submit(JobSpec{Tenant: "anything-goes"}); err != nil {
		t.Fatalf("labelled submit without tenancy: %v", err)
	}
	if _, err := s.Submit(JobSpec{Tenant: "bad name!"}); err == nil {
		t.Fatal("invalid tenant name must still fail spec validation")
	}
	sts := s.TenantStatuses()
	if len(sts) != 1 || sts[0].Name != tenant.DefaultName {
		t.Fatalf("statuses without tenancy = %+v, want the single default", sts)
	}
	close(r.release)
}
