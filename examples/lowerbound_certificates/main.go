// Lower-bound certificates: the other side of the sharp threshold, made
// finite and machine-checkable. Sinkless orientation sits exactly at
// p = 2^-d; the paper cites Ω(log n) deterministic lower bounds for it.
// This example decides EXACTLY — via 2-SAT over all radius-t edge-view
// orientation rules — for which ID spaces a t-round algorithm can exist on
// cycles, extracts an explicit rule where one does, and prints the
// impossibility certificates where none can.
package main

import (
	"fmt"
	"os"

	lll "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound_certificates:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("radius-t edge-view algorithms for sinkless orientation on cycles")
	fmt.Println("(IDs from {0..m-1}; each decision is exact, via 2-SAT)")
	fmt.Println()
	fmt.Println("radius | ID space m | vars  | clauses | algorithm exists?")
	fmt.Println("-------+------------+-------+---------+------------------")
	type probe struct{ t, m int }
	for _, p := range []probe{{1, 5}, {1, 6}, {1, 7}, {2, 7}, {2, 8}, {2, 9}} {
		cert, err := lll.DecideLowerBound(p.t, p.m)
		if err != nil {
			return err
		}
		answer := "NO (certified impossible)"
		if cert.Solvable {
			answer = "yes (rule extracted)"
		}
		fmt.Printf("%6d | %10d | %5d | %7d | %s\n", p.t, p.m, cert.Vars, cert.Clauses, answer)
	}

	// Demonstrate the extracted radius-1 rule on the one solvable case.
	cert, err := lll.DecideLowerBound(1, 5)
	if err != nil {
		return err
	}
	ids := []int{3, 0, 4, 1, 2}
	sinks, err := cert.CheckCycle(ids)
	if err != nil {
		return err
	}
	fmt.Printf("\nextracted radius-1 rule on cycle %v: sinks = %v\n", ids, sinks)

	fmt.Println()
	fmt.Println("reading the frontier: a rule exists ONLY when the whole cycle fits")
	fmt.Println("inside the view window (m = 2t+3). One extra identifier and NO local")
	fmt.Println("algorithm survives — while the below-threshold slack relaxation is")
	fmt.Println("solvable at radius 0 by orienting nothing. That asymmetry is the")
	fmt.Println("paper's sharp threshold, in a finite and fully checkable form.")
	return nil
}
