package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/apps"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/local"
	"repro/internal/model"
	"repro/internal/prng"
)

// mustFix runs FixSequential and fails the test on error.
func mustFix(t *testing.T, inst *model.Instance, order []int, opts Options) *Result {
	t.Helper()
	res, err := FixSequential(inst, order, opts)
	if err != nil {
		t.Fatalf("FixSequential: %v", err)
	}
	return res
}

// assertSolved checks the full Theorem guarantee: complete assignment, no
// violated events, P* bounds intact, and a certified probability bound < 1.
func assertSolved(t *testing.T, res *Result) {
	t.Helper()
	if !res.Assignment.Complete() {
		t.Fatal("assignment incomplete")
	}
	if res.Stats.FinalViolatedEvents != 0 {
		t.Fatalf("%d events violated", res.Stats.FinalViolatedEvents)
	}
	if res.Stats.MaxEdgeSum > 2+1e-9 {
		t.Fatalf("edge sum %v > 2", res.Stats.MaxEdgeSum)
	}
	if res.Stats.PeakEdgeSum > 2+1e-9 {
		t.Fatalf("peak edge sum %v > 2", res.Stats.PeakEdgeSum)
	}
	if res.Stats.PeakCertBound >= 1 {
		t.Fatalf("peak certified bound %v >= 1 under the criterion", res.Stats.PeakCertBound)
	}
	if res.Stats.Fallbacks != 0 {
		t.Fatalf("%d numeric fallbacks (existence lemma should make this 0)", res.Stats.Fallbacks)
	}
}

func TestTheorem11OnCycles(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 12} {
		s, err := apps.NewSinkless(graph.Cycle(n), 0.2)
		if err != nil {
			t.Fatal(err)
		}
		res := mustFix(t, s.Instance, nil, Options{Audit: true})
		assertSolved(t, res)
		if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
			t.Fatalf("n=%d: sinks %v", n, sinks)
		}
		if res.Stats.Rank2 != s.Instance.NumVars() {
			t.Fatalf("expected all rank-2 variables, got %+v", res.Stats)
		}
	}
}

func TestTheorem11OnRegularGraphs(t *testing.T) {
	r := prng.New(42)
	for _, tc := range []struct {
		n, d int
	}{{10, 3}, {20, 4}, {24, 5}, {16, 6}} {
		g, err := graph.RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatal(err)
		}
		s, err := apps.NewSinkless(g, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		ok, margin := s.Instance.ExponentialCriterion()
		if !ok {
			t.Fatalf("instance (n=%d,d=%d) violates criterion: %v", tc.n, tc.d, margin)
		}
		res := mustFix(t, s.Instance, nil, Options{})
		assertSolved(t, res)
		if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
			t.Fatalf("(n=%d,d=%d): sinks %v", tc.n, tc.d, sinks)
		}
		if res.Stats.MaxEventBound > math.Pow(2, float64(s.Instance.D()))+1e-9 {
			t.Fatalf("event bound %v exceeds 2^d", res.Stats.MaxEventBound)
		}
	}
}

func TestTheorem11AdversarialOrders(t *testing.T) {
	// Theorem 1.1 holds for ANY order; exercise many random permutations.
	s, err := apps.NewSinkless(graph.Cycle(10), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	r := prng.New(7)
	for trial := 0; trial < 50; trial++ {
		order := r.Perm(s.Instance.NumVars())
		res := mustFix(t, s.Instance, order, Options{})
		assertSolved(t, res)
	}
}

func TestTheorem11AllStrategies(t *testing.T) {
	// Below the threshold even the adversarial (worst feasible) strategy
	// must succeed — that is exactly the sharp-threshold claim.
	s, err := apps.NewSinkless(graph.Cycle(9), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategyMinScore, StrategyFirst, StrategyAdversarial} {
		res := mustFix(t, s.Instance, nil, Options{Strategy: strat})
		assertSolved(t, res)
	}
}

func TestThresholdFailureWithAdversarialChoices(t *testing.T) {
	// AT the threshold (slack 0, margin exactly 1) the guarantee
	// degenerates to Pr ≤ 1 and the adversarial strategy does produce a
	// sink: the empirical face of the lower-bound side of the phase
	// transition.
	s, err := apps.NewSinkless(graph.Cycle(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FixSequential(s.Instance, nil, Options{Strategy: StrategyAdversarial})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalViolatedEvents == 0 {
		t.Fatal("expected the adversarial strategy to create a sink at the threshold")
	}
	if res.Stats.MaxFinalProbQuotient < 1-1e-9 {
		t.Fatalf("certified bound %v should have reached 1", res.Stats.MaxFinalProbQuotient)
	}
}

func TestThresholdGreedyStillSolvesCycles(t *testing.T) {
	// At the threshold the min-score greedy has no guarantee, but on even
	// cycles it happens to find the consistent orientation. This documents
	// that failures at the threshold are strategy-dependent, not forced.
	s, err := apps.NewSinkless(graph.Cycle(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	res := mustFix(t, s.Instance, nil, Options{})
	if res.Stats.FinalViolatedEvents != 0 {
		t.Skipf("greedy failed at threshold (allowed): %d violations", res.Stats.FinalViolatedEvents)
	}
}

func TestTheorem11BiasedFamilyNoEscape(t *testing.T) {
	// The biased family has no "free" value, so every fix commits to a
	// real orientation and the weighted bookkeeping genuinely moves. Below
	// the threshold (alpha != 1/2) all strategies and orders must succeed.
	r := prng.New(101)
	for _, alpha := range []float64{0.3, 0.42, 0.49} {
		s, err := apps.NewSinklessBiasedCycle(12, alpha)
		if err != nil {
			t.Fatal(err)
		}
		ok, margin := s.Instance.ExponentialCriterion()
		wantMargin := 4 * alpha * (1 - alpha)
		if !ok || math.Abs(margin-wantMargin) > 1e-9 {
			t.Fatalf("alpha=%v: margin %v, want %v", alpha, margin, wantMargin)
		}
		for _, strat := range []Strategy{StrategyMinScore, StrategyFirst, StrategyAdversarial} {
			for trial := 0; trial < 5; trial++ {
				var order []int
				if trial > 0 {
					order = r.Perm(s.Instance.NumVars())
				}
				res := mustFix(t, s.Instance, order, Options{Strategy: strat, Audit: true})
				assertSolved(t, res)
				if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
					t.Fatalf("alpha=%v strat=%d: sinks %v", alpha, strat, sinks)
				}
			}
		}
	}
}

func TestTheorem11BiasedPeaksAreNontrivial(t *testing.T) {
	// Unlike the slack family (where the fixer escapes via 'free' and no
	// event bound ever rises), the biased family forces real increases:
	// the peak certified bound must exceed the initial p.
	s, err := apps.NewSinklessBiasedCycle(16, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res := mustFix(t, s.Instance, nil, Options{})
	p := s.Instance.P()
	if res.Stats.PeakCertBound <= p+1e-12 {
		t.Fatalf("peak cert bound %v did not rise above p=%v: instance is trivial", res.Stats.PeakCertBound, p)
	}
	if res.Stats.PeakEventBound <= 1 {
		t.Fatalf("peak event bound %v did not rise above 1", res.Stats.PeakEventBound)
	}
}

func TestBiasedAtThresholdBehaviour(t *testing.T) {
	// alpha = 1/2 is exactly the threshold instance (fair sinkless
	// orientation); the adversarial strategy must be able to fail.
	s, err := apps.NewSinklessBiasedCycle(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, margin := s.Instance.ExponentialCriterion(); math.Abs(margin-1) > 1e-12 {
		t.Fatalf("margin = %v, want 1", margin)
	}
	res, err := FixSequential(s.Instance, nil, Options{Strategy: StrategyAdversarial})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PeakCertBound < 1-1e-9 {
		t.Fatalf("peak cert bound %v should reach 1 at the threshold", res.Stats.PeakCertBound)
	}
}

func TestTheorem13OnRegularHypergraphs(t *testing.T) {
	r := prng.New(11)
	for _, tc := range []struct {
		n, deg int
	}{{12, 2}, {30, 3}, {21, 4}} {
		h, err := hypergraph.RandomRegularRank3(tc.n, tc.deg, r)
		if err != nil {
			t.Fatal(err)
		}
		s, err := apps.NewHyperSinkless(h, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		ok, margin := s.Instance.ExponentialCriterion()
		if !ok {
			t.Fatalf("instance (n=%d,deg=%d) violates criterion: margin %v", tc.n, tc.deg, margin)
		}
		res := mustFix(t, s.Instance, nil, Options{Audit: tc.n <= 21})
		assertSolved(t, res)
		if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
			t.Fatalf("(n=%d,deg=%d): sinks %v", tc.n, tc.deg, sinks)
		}
		if res.Stats.Rank3 != s.Instance.NumVars() {
			t.Fatalf("expected all rank-3 variables, got %+v", res.Stats)
		}
	}
}

func TestTheorem13AdversarialOrders(t *testing.T) {
	r := prng.New(13)
	h, err := hypergraph.RandomRegularRank3(15, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		order := r.Perm(s.Instance.NumVars())
		res := mustFix(t, s.Instance, order, Options{})
		assertSolved(t, res)
	}
}

func TestTheorem13AllStrategies(t *testing.T) {
	r := prng.New(17)
	h, err := hypergraph.RandomRegularRank3(18, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategyMinScore, StrategyFirst, StrategyAdversarial} {
		res := mustFix(t, s.Instance, nil, Options{Strategy: strat, Audit: true})
		assertSolved(t, res)
	}
}

func TestTheorem13ThreeOrientations(t *testing.T) {
	// The paper's own rank-3 application, with no relaxation knob.
	r := prng.New(19)
	h, err := hypergraph.RandomRegularRank3(24, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	to, err := apps.NewThreeOrientations(h)
	if err != nil {
		t.Fatal(err)
	}
	ok, margin := to.Instance.ExponentialCriterion()
	if !ok {
		t.Fatalf("criterion fails: margin %v", margin)
	}
	res := mustFix(t, to.Instance, nil, Options{})
	assertSolved(t, res)
	if viol := to.Violations(res.Assignment); len(viol) != 0 {
		t.Fatalf("nodes sink in >=2 orientations: %v", viol)
	}
}

func TestTheorem13WeakSplitting(t *testing.T) {
	r := prng.New(23)
	adj, err := apps.RandomBiregular(16, 3, 16, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := apps.NewWeakSplitting(adj, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	ok, margin := w.Instance.ExponentialCriterion()
	if !ok {
		t.Fatalf("criterion fails: margin %v", margin)
	}
	res := mustFix(t, w.Instance, nil, Options{Audit: true})
	assertSolved(t, res)
	if mono := w.Monochromatic(res.Assignment); len(mono) != 0 {
		t.Fatalf("monochromatic V-nodes: %v", mono)
	}
}

// multiVarEdgeInstance builds a rank-2 cycle where every dependency edge
// carries two variables (see the Section 2 remark on combining them).
func multiVarEdgeInstance(t *testing.T, n int) *model.Instance {
	t.Helper()
	b := model.NewBuilder()
	coin := make([]int, n)
	die := make([]int, n)
	biased := dist.MustNew([]float64{0.45, 0.55})
	for e := 0; e < n; e++ {
		coin[e] = b.AddVariable(biased, "coin")
		die[e] = b.AddVariable(dist.Uniform(3), "die")
	}
	for v := 0; v < n; v++ {
		left := (v - 1 + n) % n
		right := v
		scope := []int{coin[left], die[left], coin[right], die[right]}
		b.AddEvent(scope, func(vals []int) bool {
			return vals[0] == 1 && vals[1] == 0 && vals[2] == 0 && vals[3] == 0
		}, nil, "")
	}
	return b.MustBuild()
}

func TestWeightedVsCombinedMultiVarEdges(t *testing.T) {
	// Two equivalent routes through the Section 2 remark: fix the raw
	// instance (several variables per edge, weighted bookkeeping) or
	// combine each edge's variables into one and fix the normal form. Both
	// must solve the instance.
	inst := multiVarEdgeInstance(t, 8)
	if ok, margin := inst.ExponentialCriterion(); !ok {
		t.Fatalf("multi-var instance off criterion: margin %v", margin)
	}
	raw := mustFix(t, inst, nil, Options{Audit: true})
	assertSolved(t, raw)

	c, err := model.Combine(inst)
	if err != nil {
		t.Fatal(err)
	}
	comb := mustFix(t, c.Instance, nil, Options{Audit: true})
	assertSolved(t, comb)

	// Expansion of the combined solution must avoid all original events.
	expanded := c.Expand(comb.Assignment)
	violated, err := inst.CountViolated(expanded)
	if err != nil {
		t.Fatal(err)
	}
	if violated != 0 {
		t.Fatalf("expanded combined solution violates %d events", violated)
	}
}

// mixedChainHypergraph builds a deterministic hypergraph on n nodes
// (n divisible by 3) alternating rank-3 and rank-2 hyperedges around a
// ring: triangles {3k, 3k+1, 3k+2} linked by pair edges {3k+2, 3(k+1)}.
// Every node is covered and the dependency degree is at most 3.
func mixedChainHypergraph(t *testing.T, n int) *hypergraph.Hypergraph {
	t.Helper()
	if n%3 != 0 {
		t.Fatalf("n=%d not divisible by 3", n)
	}
	b := hypergraph.NewBuilder(n)
	for k := 0; 3*k < n; k++ {
		if err := b.AddEdge(3*k, 3*k+1, 3*k+2); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(3*k+2, (3*k+3)%n); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestMixedRankHypergraphInstances(t *testing.T) {
	// Hypergraphs mixing rank-2 and rank-3 hyperedges exercise fixRank2
	// and fixRank3 (and the shared φ edges between them) in one run, both
	// sequentially and distributed.
	r := prng.New(401)
	h := mixedChainHypergraph(t, 18)
	// d = 3 at the linking nodes, so p = (1-δ)/3 < 2^-3 needs δ > 5/8.
	s, err := apps.NewHyperSinklessMixed(h, 3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if ok, margin := s.Instance.ExponentialCriterion(); !ok {
		t.Fatalf("mixed chain off criterion: margin %v", margin)
	}
	if s.Instance.Rank() != 3 {
		t.Fatalf("rank = %d", s.Instance.Rank())
	}
	for trial := 0; trial < 8; trial++ {
		var order []int
		if trial > 0 {
			order = r.Perm(s.Instance.NumVars())
		}
		res := mustFix(t, s.Instance, order, Options{Audit: true})
		assertSolved(t, res)
		if res.Stats.Rank2 == 0 || res.Stats.Rank3 == 0 {
			t.Fatalf("trial %d: ranks not mixed: %+v", trial, res.Stats)
		}
		if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
			t.Fatalf("trial %d: sinks %v", trial, sinks)
		}
	}
	dres, err := FixDistributed3(s.Instance, Options{}, local.Options{IDSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if dres.ViolatedEvents != 0 {
		t.Fatal("distributed violations on mixed chain")
	}
}

func TestMixedRankInstance(t *testing.T) {
	// Hand-built instance mixing rank-1 (private coin), rank-2 (edge
	// variable) and rank-3 (hyperedge variable) variables.
	b := model.NewBuilder()
	coin := b.AddVariable(dist.MustNew([]float64{0.7, 0.3}), "coin")
	edge := b.AddVariable(dist.Uniform(2), "edge")
	tri := b.AddVariable(dist.Uniform(3), "tri")

	// E0 depends on coin, edge, tri; E1 on edge, tri; E2 on tri.
	b.AddEvent([]int{coin, edge, tri}, func(v []int) bool {
		return v[0] == 1 && v[1] == 1 && v[2] == 0
	}, nil, "E0")
	b.AddEvent([]int{edge, tri}, func(v []int) bool {
		return v[0] == 0 && v[1] == 1
	}, nil, "E1")
	b.AddEvent([]int{tri}, func(v []int) bool {
		return v[0] == 2
	}, nil, "E2")
	inst := b.MustBuild()

	// p = max(0.3*0.5*1/3, 0.5*1/3, 1/3) = 1/3; d = 2; margin = 4/3 > 1:
	// no guarantee, but the fixer must still run and report honestly.
	res := mustFix(t, inst, nil, Options{})
	if !res.Assignment.Complete() {
		t.Fatal("assignment incomplete")
	}
	if res.Stats.Rank1 != 1 || res.Stats.Rank2 != 1 || res.Stats.Rank3 != 1 {
		t.Fatalf("rank counts wrong: %+v", res.Stats)
	}
}

func TestRank0VariableFixed(t *testing.T) {
	b := model.NewBuilder()
	b.AddVariable(dist.Uniform(5), "unused")
	x := b.AddVariable(dist.Uniform(2), "x")
	b.AddEvent([]int{x}, func(v []int) bool { return v[0] == 1 }, nil, "E")
	inst := b.MustBuild()
	res := mustFix(t, inst, nil, Options{})
	if !res.Assignment.Complete() {
		t.Fatal("rank-0 variable left unfixed")
	}
	if res.Stats.Rank0 != 1 || res.Stats.Rank1 != 1 {
		t.Fatalf("rank counts wrong: %+v", res.Stats)
	}
	if res.Stats.FinalViolatedEvents != 0 {
		t.Fatal("single rank-1 event should be avoidable")
	}
}

func TestRank4Rejected(t *testing.T) {
	b := model.NewBuilder()
	x := b.AddVariable(dist.Uniform(2), "x")
	for i := 0; i < 4; i++ {
		b.AddEvent([]int{x}, func(v []int) bool { return v[0] == 1 }, nil, "E")
	}
	inst := b.MustBuild()
	if _, err := FixSequential(inst, nil, Options{}); !errors.Is(err, ErrRankTooHigh) {
		t.Fatalf("err = %v, want ErrRankTooHigh", err)
	}
}

func TestBadOrderRejected(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(4), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]int{{0, 1}, {0, 1, 2, 2}, {0, 1, 2, 9}} {
		if _, err := FixSequential(s.Instance, order, Options{}); !errors.Is(err, ErrBadOrder) {
			t.Fatalf("order %v: err = %v, want ErrBadOrder", order, err)
		}
	}
}

func TestQuickTheorem13RandomHypergraphs(t *testing.T) {
	// Property: on every random rank-3 instance satisfying the criterion,
	// the fixer avoids all events, with zero numeric fallbacks, in a random
	// order, under every strategy.
	f := func(seed uint32) bool {
		r := prng.New(uint64(seed))
		h := hypergraph.RandomRank3(15, 14, 3, r)
		if h.M() == 0 {
			return true
		}
		// Nodes of degree 0 are fine here: their events do not exist (we
		// only build events for covered nodes via HyperSinkless? No —
		// HyperSinkless rejects them). Skip such hypergraphs.
		for v := 0; v < h.N(); v++ {
			if h.Degree(v) == 0 {
				return true
			}
		}
		s, err := apps.NewHyperSinkless(h, 0.45)
		if err != nil {
			return false
		}
		if ok, _ := s.Instance.ExponentialCriterion(); !ok {
			return true // irregular degrees can break the criterion; skip
		}
		order := r.Perm(s.Instance.NumVars())
		for _, strat := range []Strategy{StrategyMinScore, StrategyFirst, StrategyAdversarial} {
			res, err := FixSequential(s.Instance, order, Options{Strategy: strat})
			if err != nil || res.Stats.FinalViolatedEvents != 0 || res.Stats.Fallbacks != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCertifiedBoundBelowOne(t *testing.T) {
	// The certified final bound Pr[E_v]·EventBound(v) must be < 1 under the
	// criterion — this is the actual inequality chain of the proofs.
	r := prng.New(29)
	h, err := hypergraph.RandomRegularRank3(24, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res := mustFix(t, s.Instance, nil, Options{})
	if res.Stats.MaxFinalProbQuotient >= 1 {
		t.Fatalf("certified bound %v >= 1", res.Stats.MaxFinalProbQuotient)
	}
}

func BenchmarkFixRank2Cycle(b *testing.B) {
	s, err := apps.NewSinkless(graph.Cycle(200), 0.2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FixSequential(s.Instance, nil, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixRank3Hypergraph(b *testing.B) {
	r := prng.New(1)
	h, err := hypergraph.RandomRegularRank3(99, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FixSequential(s.Instance, nil, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStressFamilyAcrossStrategiesAndDistributed(t *testing.T) {
	// The margin-calibrated random-conjunction family (arbitrary bad
	// tuples, per-event margins) through every solving path.
	r := prng.New(501)
	solved := 0
	for trial := 0; trial < 10 && solved < 3; trial++ {
		h, err := hypergraph.RandomRegularRank3(12, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := apps.NewRandomConjunction(h, 2, 0.85, r)
		if err != nil {
			continue
		}
		for _, strat := range []Strategy{StrategyMinScore, StrategyFirst, StrategyAdversarial} {
			res := mustFix(t, rc.Instance, r.Perm(rc.Instance.NumVars()), Options{Strategy: strat})
			if res.Stats.FinalViolatedEvents != 0 {
				t.Fatalf("trial %d strat %d: violations", trial, strat)
			}
		}
		dres, err := FixDistributed3(rc.Instance, Options{}, local.Options{IDSeed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if dres.ViolatedEvents != 0 {
			t.Fatalf("trial %d: distributed violations", trial)
		}
		ares, err := FixSequentialAdaptive(rc.Instance, GreedyAdversary, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ares.Stats.FinalViolatedEvents != 0 {
			t.Fatalf("trial %d: adaptive violations", trial)
		}
		solved++
	}
	if solved < 2 {
		t.Fatalf("only %d calibratable instances", solved)
	}
}

func TestGoldenDeterminism(t *testing.T) {
	// Guards accidental behaviour changes: a pinned instance and seed must
	// keep producing exactly this assignment. If an intentional algorithm
	// change breaks this test, update the golden values and note it in the
	// commit.
	s, err := apps.NewSinklessBiasedCycle(8, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res := mustFix(t, s.Instance, nil, Options{})
	vals, _ := res.Assignment.Values()
	// Re-run: byte-identical.
	res2 := mustFix(t, s.Instance, nil, Options{})
	vals2, _ := res2.Assignment.Values()
	for i := range vals {
		if vals[i] != vals2[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	// The greedy run's peak certified bound on this family is empirically
	// pinned at exactly alpha = 0.4 (see also the T8 ablation, where every
	// strategy and order lands on alpha). If an intentional algorithm
	// change moves this, update the golden value.
	if math.Abs(res.Stats.PeakCertBound-0.4) > 1e-9 {
		t.Fatalf("peak certified bound %v, want golden 0.4", res.Stats.PeakCertBound)
	}
}
