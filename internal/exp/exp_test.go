package exp

import (
	"strings"
	"testing"
)

// small shrinks experiments for the unit-test suite.
var small = Sizes{Scale: 0.5, Trials: 3}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "X0",
		Title:  "demo",
		Note:   "a note",
		Header: []string{"col", "value"},
	}
	tbl.AddRow("pi-ish", 3.14159)
	tbl.AddRow("flag", true)
	tbl.AddRow("count", 42)
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"=== X0: demo ===", "a note", "col", "3.142", "yes", "42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestF1Surface(t *testing.T) {
	tbl, err := F1Surface(1.0, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	// First cell of the first data row is a=0.00; f(0,0)=4.
	if tbl.Rows[0][1] != "4.000" {
		t.Fatalf("f(0,0) cell = %q, want 4.000", tbl.Rows[0][1])
	}
	if _, err := F1Surface(-1, 10, 1); err == nil {
		t.Fatal("negative step accepted")
	}
}

func TestF2Witness(t *testing.T) {
	tbl, err := F2Witness()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[3] != "yes" {
			t.Fatalf("constraint row failed: %v", row)
		}
	}
}

func TestT1(t *testing.T) {
	tbl, err := T1Rank2(1, small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 5 {
		t.Fatalf("only %d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[5] != "0" {
			t.Fatalf("violations in row %v", row)
		}
	}
}

func TestT2(t *testing.T) {
	tbl, err := T2DistributedRank2(1, Sizes{Scale: 0.25, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 6 {
		t.Fatalf("only %d rows", len(tbl.Rows))
	}
}

func TestT3(t *testing.T) {
	tbl, err := T3Rank3(1, small)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[6] != "0" || row[7] != "0" {
			t.Fatalf("violations or fallbacks in row %v", row)
		}
	}
}

func TestT4(t *testing.T) {
	if _, err := T4DistributedRank3(1, Sizes{Scale: 0.5, Trials: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestT5ShowsSharpThreshold(t *testing.T) {
	tbl, err := T5Threshold(1, Sizes{Scale: 0.5, Trials: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("want 8 rows (4 slack + 4 biased), got %d", len(tbl.Rows))
	}
	// Below the threshold: zero violations in both strategies, in both
	// families (rows 0-2 slack, rows 4-6 biased).
	for _, i := range []int{0, 1, 2, 4, 5, 6} {
		row := tbl.Rows[i]
		if row[2] != "0" || row[3] != "0" {
			t.Fatalf("sub-threshold violations: %v", row)
		}
	}
	// At the threshold (slack family, margin 1) the adversarial strategy
	// must fail: on an even cycle with natural order it builds a sink.
	if tbl.Rows[3][3] == "0" {
		t.Fatalf("adversarial strategy did not fail at the slack threshold: %v", tbl.Rows[3])
	}
}

func TestT6(t *testing.T) {
	tbl, err := T6MoserTardos(1, Sizes{Scale: 0.5, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[6] != "0" {
			t.Fatalf("deterministic fixer violated events: %v", row)
		}
		if row[5] != "yes" {
			t.Fatalf("distributed MT did not converge: %v", row)
		}
	}
}

func TestT7(t *testing.T) {
	tbl, err := T7Applications(1, small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("want 3 application rows, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[6] != "yes" || row[7] != "yes" || row[8] != "yes" {
			t.Fatalf("application failed: %v", row)
		}
	}
}

func TestT8(t *testing.T) {
	tbl, err := T8Ablations(1, small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 24 {
		t.Fatalf("want 24 ablation rows (2 instances x 3 strategies x 4 orders), got %d", len(tbl.Rows))
	}
}

func TestT9(t *testing.T) {
	tbl, err := T9Conjecture(1, Sizes{Scale: 0.6, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("want 7 rows (validation + 3 workloads x seq+dist), got %d", len(tbl.Rows))
	}
}

func TestT10(t *testing.T) {
	tbl, err := T10Spectrum(1, Sizes{Scale: 0.6, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("want 6 exponent rows, got %d", len(tbl.Rows))
	}
	// The guarantee columns must flip exactly once along the sweep.
	sawNo, sawYes := false, false
	for _, row := range tbl.Rows {
		if row[4] == "yes" {
			sawYes = true
			if row[6] != "0" {
				t.Fatalf("violations under guarantee: %v", row)
			}
		} else {
			sawNo = true
			if sawYes {
				t.Fatalf("guarantee column not monotone: %v", tbl.Rows)
			}
		}
	}
	if !sawNo || !sawYes {
		t.Fatalf("sweep did not cross the threshold")
	}
}

func TestT11(t *testing.T) {
	// Scale < 1 skips the (slower) radius-3 decisions.
	tbl, err := T11LowerBound(1, Sizes{Scale: 0.5, Trials: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("want 7 probe rows, got %d", len(tbl.Rows))
	}
	solvableCount := 0
	for _, row := range tbl.Rows {
		if row[4] == "yes" {
			solvableCount++
		}
	}
	if solvableCount != 2 {
		t.Fatalf("want exactly 2 solvable rows (m = 2t+3), got %d", solvableCount)
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in short mode")
	}
	tables, err := All(1, Sizes{Scale: 0.4, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 13 {
		t.Fatalf("want 13 tables, got %d", len(tables))
	}
	wantIDs := []string{"F1", "F2", "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T11"}
	for i, tbl := range tables {
		if tbl.ID != wantIDs[i] {
			t.Fatalf("table %d has ID %s, want %s", i, tbl.ID, wantIDs[i])
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{
		ID:     "X1",
		Title:  "csv demo",
		Header: []string{"name", "value"},
	}
	tbl.AddRow("plain", 1)
	tbl.AddRow("with, comma", 2)
	tbl.AddRow(`with "quote"`, 3)
	var sb strings.Builder
	if err := tbl.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "name,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != `"with, comma",2` {
		t.Fatalf("comma row = %q", lines[2])
	}
	if lines[3] != `"with ""quote""",3` {
		t.Fatalf("quote row = %q", lines[3])
	}
}
