// Command lllrouter is the cluster routing tier in front of N llld nodes.
// It serves the same job API as a single node — POST /v1/jobs, batch
// submit, views, NDJSON event streams, cancel — and routes each job to a
// node by consistent hashing on the spec's placement key, so isomorphic
// resubmissions land where their cached result lives. Placement spills to
// the next preferred node when the home node is saturated (429/503) or
// unreachable, bounded-load keeps the spread within a factor of the mean,
// and a per-job follower relays the node's event stream with router-scoped
// sequence numbers.
//
// When a node dies or drains mid-job, the router re-places the job on a
// surviving node carrying the latest checkpoint it saw on the stream; the
// job resumes from that checkpoint under the same trace ID and finishes
// bit-identically to an uninterrupted run. The move is visible as a
// synthetic "migrated" event.
//
// Membership is elastic: a threshold failure detector drives nodes
// up→suspect→down on consecutive probe failures (suspect is deprioritized,
// down is skipped outright; flapping nodes are damped at suspect), and the
// member set hot-reloads without a restart — POST /cluster/members applies
// an admin join/leave and fans the new epoch out to every node, while an
// anti-entropy loop polls the nodes' own GET /cluster and adopts any newer
// epoch it finds (so a join announced to a node also reaches the router).
//
// Cluster-wide views and admin:
//
//	GET  /cluster          membership, health, per-node load, migration totals
//	POST /cluster/members  runtime join/leave: {"action":"join","name":"d","url":"http://..."}
//	GET  /cluster/metrics  every node's /metrics, node="..." labels injected
//	GET  /cluster/slo      every node's /slo keyed by node name
//
// Usage:
//
//	lllrouter -addr :8080 -nodes a=http://127.0.0.1:8081,b=http://127.0.0.1:8082,c=http://127.0.0.1:8083
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/router"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lllrouter:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	nodesFlag := flag.String("nodes", "", "cluster membership as name=url,name=url (required)")
	vnodes := flag.Int("vnodes", 0, "consistent-hash virtual nodes per node (0: default; must match the nodes)")
	loadFactor := flag.Float64("load-factor", 0, "bounded-load factor over mean outstanding jobs (0: default 2)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "node health/load poll period")
	maxMigrations := flag.Int("max-migrations", 3, "per-job migration budget before the job is failed")
	retention := flag.Int("retention", 1024, "finished routed jobs kept")
	suspectAfter := flag.Int("suspect-after", 0, "consecutive probe failures before a node turns suspect (0: default 1)")
	downAfter := flag.Int("down-after", 0, "consecutive probe failures before a node turns down (0: default 3)")
	flapWindow := flag.Duration("flap-window", 0, "window over which down→up recoveries count as flapping (0: default 60s)")
	flapMax := flag.Int("flap-max", 0, "recoveries inside -flap-window before damping holds the node at suspect (0: default 3)")
	dampHold := flag.Duration("damp-hold", 0, "how long a flapping node is held at suspect after recovering (0: default 5s)")
	syncInterval := flag.Duration("sync-interval", 0, "anti-entropy membership sync period against the nodes' GET /cluster (0: 4×probe-interval)")
	flag.Parse()

	if *nodesFlag == "" {
		return fmt.Errorf("-nodes is required")
	}
	nodes, err := parseNodes(*nodesFlag)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	r, err := router.New(router.Config{
		Nodes:             nodes,
		VNodes:            *vnodes,
		BoundedLoadFactor: *loadFactor,
		ProbeInterval:     *probeInterval,
		MaxMigrations:     *maxMigrations,
		Retention:         *retention,
		Metrics:           reg,
		SyncInterval:      *syncInterval,
		Detector: cluster.DetectorConfig{
			SuspectAfter: *suspectAfter,
			DownAfter:    *downAfter,
			FlapWindow:   *flapWindow,
			FlapMax:      *flapMax,
			DampHold:     *dampHold,
		},
	})
	if err != nil {
		return err
	}

	server := &http.Server{
		Addr:              *addr,
		Handler:           router.NewHandler(r, reg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("lllrouter: routing for %d nodes on %s", len(nodes), *addr)
		if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Printf("lllrouter: %v received, shutting down", sig)
	}

	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := server.Shutdown(httpCtx); err != nil {
		log.Printf("lllrouter: http shutdown: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		log.Printf("lllrouter: followers still draining: %v", err)
	}
	log.Printf("lllrouter: bye")
	return <-errCh
}

// parseNodes parses "a=http://host:1,b=http://host:2" into a membership map.
func parseNodes(s string) (map[string]string, error) {
	nodes := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad node entry %q, want name=url", part)
		}
		if _, dup := nodes[name]; dup {
			return nil, fmt.Errorf("duplicate node name %q", name)
		}
		nodes[name] = strings.TrimSuffix(url, "/")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("no nodes in %q", s)
	}
	return nodes, nil
}
