package exp

import (
	"os"
	"strings"
	"testing"
)

// TestDocumentationListsEveryExperiment guards the documentation against
// drifting from the harness: every experiment ID produced by All must be
// mentioned in DESIGN.md's experiment index and in EXPERIMENTS.md.
func TestDocumentationListsEveryExperiment(t *testing.T) {
	ids := []string{"F1", "F2", "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T11"}
	for _, file := range []string{"../../DESIGN.md", "../../EXPERIMENTS.md"} {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading %s: %v", file, err)
		}
		text := string(data)
		for _, id := range ids {
			if !strings.Contains(text, id) {
				t.Errorf("%s does not mention experiment %s", file, id)
			}
		}
	}
}
