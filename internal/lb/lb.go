// Package lb computes FINITE LOWER-BOUND CERTIFICATES for the threshold
// problem: it decides, exactly, whether any deterministic radius-t
// "edge-view" algorithm solves sinkless orientation on all small cycles.
//
// A radius-t edge-view algorithm orients every edge of a cycle as a
// function of the 2t+2 identifiers within distance t of the edge — the
// information both endpoints jointly hold after t LOCAL rounds. Whether
// such a function exists for ID space {0..m-1} is decidable: one boolean
// variable per ordered (2t+2)-tuple of distinct IDs ("edge points at its
// right endpoint"), a consistency constraint per tuple/reversal pair, and,
// for every (2t+3)-window, a 2-clause forbidding a sink at the window's
// centre. The resulting formula is pure 2-SAT, so internal/twosat decides
// it exactly:
//
//   - UNSAT: a machine-checked certificate that NO radius-t algorithm
//     solves sinkless orientation on all cycles of length 2t+3..m with
//     distinct IDs from [m] — the finite, checkable face of the
//     lower-bound side of the paper's threshold (the problem sits exactly
//     at p = 2^-d).
//   - SAT: an explicit orientation rule, which the tests validate by
//     simulation on random cycles.
//
// The below-threshold contrast is stark: the slack-relaxed variant (edges
// may point at nobody) is solvable by the radius-0 rule "orient nothing".
package lb

import (
	"fmt"

	"repro/internal/twosat"
)

// Certificate is the outcome of one exact decision.
type Certificate struct {
	// Radius is t: the edge sees the 2t+2 IDs within distance t.
	Radius int
	// IDSpace is m: identifiers come from {0..m-1}.
	IDSpace int
	// Vars and Clauses are the 2-SAT instance dimensions.
	Vars, Clauses int
	// Solvable reports whether an orientation rule exists.
	Solvable bool

	viewLen int
	idSpace int
	rule    map[uint64]bool // view key -> oriented toward right endpoint
}

// Decide builds and solves the 2-SAT instance for the given radius and ID
// space. It requires m ≥ 2t+3 (otherwise no window fits).
func Decide(radius, m int) (*Certificate, error) {
	if radius < 1 {
		return nil, fmt.Errorf("lb: radius %d < 1", radius)
	}
	viewLen := 2*radius + 2
	windowLen := viewLen + 1
	if m < windowLen {
		return nil, fmt.Errorf("lb: ID space %d too small for windows of %d", m, windowLen)
	}
	// Bound the number of ordered distinct tuples (the variable count)
	// BEFORE enumerating; overflow-safe running product.
	tupleCount := 1
	for i := 0; i < viewLen; i++ {
		tupleCount *= m - i
		if tupleCount > 1<<22 {
			return nil, fmt.Errorf("lb: instance too large (m=%d, view=%d)", m, viewLen)
		}
	}

	// Enumerate ordered distinct tuples and assign variable indices.
	varOf := make(map[uint64]int)
	var enumerate func(prefix []int, used []bool)
	var tuples [][]int
	enumerate = func(prefix []int, used []bool) {
		if len(prefix) == viewLen {
			key := encode(prefix, m)
			varOf[key] = len(tuples)
			tuples = append(tuples, append([]int(nil), prefix...))
			return
		}
		for id := 0; id < m; id++ {
			if used[id] {
				continue
			}
			used[id] = true
			enumerate(append(prefix, id), used)
			used[id] = false
		}
	}
	enumerate(make([]int, 0, viewLen), make([]bool, m))

	s := twosat.New(len(tuples))
	clauses := 0
	// Consistency: the reversed view describes the same edge from the other
	// side, so its orientation bit must be the complement.
	for idx, tup := range tuples {
		revKey := encode(reverse(tup), m)
		ridx := varOf[revKey]
		if idx < ridx {
			s.AddXOR(twosat.Pos(idx), twosat.Pos(ridx))
			clauses += 2
		}
	}
	// No-sink windows: for every distinct (2t+3)-tuple, the centre node
	// must not receive both incident edges.
	window := make([]int, 0, windowLen)
	used := make([]bool, m)
	var walk func()
	walk = func() {
		if len(window) == windowLen {
			left := encode(window[:viewLen], m)
			right := encode(window[1:], m)
			// Sink at centre: left edge toward right endpoint (true) AND
			// right edge toward left endpoint (false). Forbid:
			// (¬x_left ∨ x_right).
			s.AddClause(twosat.Neg(varOf[left]), twosat.Pos(varOf[right]))
			clauses++
			return
		}
		for id := 0; id < m; id++ {
			if used[id] {
				continue
			}
			used[id] = true
			window = append(window, id)
			walk()
			window = window[:len(window)-1]
			used[id] = false
		}
	}
	walk()

	assignment, sat := s.Solve()
	cert := &Certificate{
		Radius:   radius,
		IDSpace:  m,
		Vars:     len(tuples),
		Clauses:  clauses,
		Solvable: sat,
		viewLen:  viewLen,
		idSpace:  m,
	}
	if sat {
		cert.rule = make(map[uint64]bool, len(tuples))
		for idx, tup := range tuples {
			cert.rule[encode(tup, m)] = assignment[idx]
		}
	}
	return cert, nil
}

// Orient applies the extracted rule (Solvable must be true): given the
// 2t+2-ID view of an edge, it reports whether the edge points at its right
// endpoint.
func (c *Certificate) Orient(view []int) (towardRight bool, err error) {
	if !c.Solvable {
		return false, fmt.Errorf("lb: certificate is UNSAT; no rule exists")
	}
	if len(view) != c.viewLen {
		return false, fmt.Errorf("lb: view has %d IDs, want %d", len(view), c.viewLen)
	}
	v, ok := c.rule[encode(view, c.idSpace)]
	if !ok {
		return false, fmt.Errorf("lb: view %v not in rule domain (repeated or out-of-range IDs?)", view)
	}
	return v, nil
}

// CheckCycle simulates the rule on a cycle given by the circular ID
// sequence ids (all distinct, length ≥ 2t+3) and returns the positions of
// sink nodes (empty for a correct rule).
func (c *Certificate) CheckCycle(ids []int) ([]int, error) {
	n := len(ids)
	if n < c.viewLen+1 {
		return nil, fmt.Errorf("lb: cycle of length %d shorter than window %d", n, c.viewLen+1)
	}
	// towardNext[i] = true iff edge (i, i+1) points at i+1.
	towardNext := make([]bool, n)
	t := c.Radius
	for i := 0; i < n; i++ {
		view := make([]int, 0, c.viewLen)
		for k := -t; k <= t+1; k++ {
			view = append(view, ids[((i+k)%n+n)%n])
		}
		tr, err := c.Orient(view)
		if err != nil {
			return nil, err
		}
		towardNext[i] = tr
	}
	var sinks []int
	for i := 0; i < n; i++ {
		// Node i is a sink iff edge (i-1, i) points at i and edge (i, i+1)
		// points at i.
		prev := ((i-1)%n + n) % n
		if towardNext[prev] && !towardNext[i] {
			sinks = append(sinks, i)
		}
	}
	return sinks, nil
}

func encode(tup []int, m int) uint64 {
	key := uint64(0)
	for _, v := range tup {
		key = key*uint64(m) + uint64(v)
	}
	return key
}

func reverse(tup []int) []int {
	out := make([]int, len(tup))
	for i, v := range tup {
		out[len(tup)-1-i] = v
	}
	return out
}
