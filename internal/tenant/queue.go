package tenant

import (
	"errors"
	"fmt"
	"sync"
)

// Queue errors. The service maps ErrFull onto its ErrQueueFull (HTTP 429)
// and ErrTenantFull onto a per-tenant quota rejection (HTTP 429).
var (
	// ErrClosed: the queue was closed (the service is draining).
	ErrClosed = errors.New("tenant: queue closed")
	// ErrFull: the global queue capacity is exhausted.
	ErrFull = errors.New("tenant: queue full")
	// ErrTenantFull: the tenant's MaxQueued cap is exhausted (the global
	// queue may still have room — another tenant's work is unaffected).
	ErrTenantFull = errors.New("tenant: per-tenant queue quota exhausted")
)

// strideScale is the stride numerator: pass advances by strideScale/weight
// per dispatch, so a weight-w tenant is dispatched w times as often as a
// weight-1 tenant. 1<<20 over MaxWeight=1e6 keeps every stride >= 1.
const strideScale = 1 << 20

// subq is one tenant's FIFO plus its stride-scheduling state.
type subq[T any] struct {
	spec    Spec
	items   []T
	head    int    // first live index into items
	pass    uint64 // virtual time of the tenant's next dispatch
	stride  uint64 // strideScale / weight
	popped  uint64 // dispatches, for share accounting
	running int    // dispatched-but-unfinished items (in-flight demand)
}

func (s *subq[T]) len() int { return len(s.items) - s.head }

// Queue is a weighted-fair multi-tenant queue: per-tenant FIFO sub-queues
// scheduled by stride within strict priority classes. Pop returns the next
// item of the highest non-empty priority class, picking the tenant with
// the smallest pass value (ties broken by name, so scheduling is
// deterministic); under saturation each tenant's dispatch share converges
// to its weight fraction, and no backlogged tenant waits more than
// Σ(weights)/own-weight dispatches between consecutive dispatches.
//
// Pop also gates on a dynamic running limit: it blocks while limit items
// are dispatched-but-unfinished, and Finish releases a slot — the hook the
// AIMD auto-tuner adjusts at runtime without restarting workers. With
// limit == worker count the gate is transparent and the queue behaves like
// the buffered channel it replaced (single tenant ⇒ plain FIFO, pinned by
// the service's differential test).
//
// All methods are safe for concurrent use.
type Queue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	subs   map[string]*subq[T]
	names  []string                // sorted tenant names, the deterministic tie-break order
	vtime  [MaxPriority + 1]uint64 // per-class virtual time (last dispatched pass)
	cap    int
	size   int
	closed bool

	limit   int // running-slot gate; Pop blocks while running >= limit
	running int
}

// NewQueue builds a queue with the given global capacity (items across all
// tenants; <=0 defaults to 64) over the given tenant set. Push for a name
// outside the set is an error — resolve names through Config.Resolve
// first.
func NewQueue[T any](capacity int, specs []Spec) *Queue[T] {
	if capacity <= 0 {
		capacity = 64
	}
	q := &Queue[T]{
		subs:  make(map[string]*subq[T], len(specs)),
		cap:   capacity,
		limit: 1,
	}
	q.cond = sync.NewCond(&q.mu)
	for _, sp := range specs {
		sp = sp.withDefaults()
		if sp.Weight < 1 {
			sp.Weight = 1
		}
		if _, dup := q.subs[sp.Name]; dup {
			continue
		}
		q.subs[sp.Name] = &subq[T]{spec: sp, stride: strideScale / uint64(sp.Weight)}
		q.names = append(q.names, sp.Name)
	}
	// specs arrive sorted from Config.Specs; re-sorting here would need
	// sort and is unnecessary — but guard the invariant cheaply.
	for i := 1; i < len(q.names); i++ {
		if q.names[i] < q.names[i-1] {
			panic(fmt.Sprintf("tenant: NewQueue specs not sorted: %q after %q", q.names[i], q.names[i-1]))
		}
	}
	return q
}

// SetRunningLimit adjusts the running-slot gate (clamped to >= 1) and
// wakes blocked Pops when it grew.
func (q *Queue[T]) SetRunningLimit(n int) {
	if n < 1 {
		n = 1
	}
	q.mu.Lock()
	grew := n > q.limit
	q.limit = n
	q.mu.Unlock()
	if grew {
		q.cond.Broadcast()
	}
}

// RunningLimit returns the current running-slot gate.
func (q *Queue[T]) RunningLimit() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.limit
}

// Running returns the dispatched-but-unfinished item count.
func (q *Queue[T]) Running() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.running
}

// Push enqueues item for the named tenant. It never blocks: a closed
// queue returns ErrClosed, a full queue ErrFull, an exhausted per-tenant
// MaxQueued ErrTenantFull, an unknown tenant an error.
func (q *Queue[T]) Push(name string, item T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	sub, ok := q.subs[name]
	if !ok {
		return fmt.Errorf("tenant: push for unconfigured tenant %q", name)
	}
	if q.size >= q.cap {
		return ErrFull
	}
	if mq := sub.spec.MaxQueued; mq > 0 && sub.len() >= mq {
		return ErrTenantFull
	}
	if sub.len() == 0 && sub.running == 0 {
		// (Re-)activation of a fully idle tenant: catch its virtual time up
		// to its class so an idle period cannot bank credit and starve the
		// others later. A tenant whose queue is empty but whose items are
		// still running is NOT idle — its demand is in flight, which is
		// exactly the steady state of a closed-loop client — so it keeps
		// its stride-earned position (Finish applies the catch-up at the
		// moment it becomes truly idle).
		if vt := q.vtime[sub.spec.Priority]; sub.pass < vt {
			sub.pass = vt
		}
	}
	sub.items = append(sub.items, item)
	q.size++
	// Broadcast, not Signal: all waiters share one cond, and a Signal could
	// wake a Pop that is blocked on the running gate, which would swallow
	// the wake-up meant for a runnable one.
	q.cond.Broadcast()
	return nil
}

// Pop blocks until an item is schedulable — some tenant has queued work,
// the highest non-empty priority class is chosen, and a running slot is
// free — then dequeues and returns it with its tenant. It returns ok=false
// once the queue is closed AND drained (mirroring a closed channel: items
// pushed before Close are still delivered). The caller owns a running slot
// until it calls Finish.
func (q *Queue[T]) Pop() (item T, name string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.size > 0 && q.running < q.limit {
			sub := q.pickLocked()
			q.vtime[sub.spec.Priority] = sub.pass
			sub.pass += sub.stride
			sub.popped++
			item = sub.items[sub.head]
			var zero T
			sub.items[sub.head] = zero // release the reference
			sub.head++
			if sub.head == len(sub.items) {
				sub.items = sub.items[:0]
				sub.head = 0
			}
			q.size--
			q.running++
			sub.running++
			return item, sub.spec.Name, true
		}
		if q.closed && q.size == 0 {
			var zero T
			return zero, "", false
		}
		q.cond.Wait()
	}
}

// pickLocked selects the next tenant: smallest pass in the highest
// non-empty priority class, ties broken by (sorted) name order. Caller
// holds q.mu and guarantees size > 0.
func (q *Queue[T]) pickLocked() *subq[T] {
	var best *subq[T]
	bestClass := -1
	for _, name := range q.names {
		sub := q.subs[name]
		if sub.len() == 0 {
			continue
		}
		switch {
		case sub.spec.Priority > bestClass:
			best, bestClass = sub, sub.spec.Priority
		case sub.spec.Priority == bestClass && sub.pass < best.pass:
			best = sub
		}
	}
	return best
}

// Finish releases the running slot acquired by a Pop for the named tenant.
// When this was the tenant's last in-flight item and nothing is queued, the
// tenant is now truly idle, so its virtual time is caught up to the class —
// the anti-banking rule applied at the moment activity actually ends rather
// than on the next Push (which would punish closed-loop clients whose
// demand lives in flight between dispatches).
func (q *Queue[T]) Finish(name string) {
	q.mu.Lock()
	if q.running > 0 {
		q.running--
	}
	if sub, ok := q.subs[name]; ok {
		if sub.running > 0 {
			sub.running--
		}
		if sub.len() == 0 && sub.running == 0 {
			if vt := q.vtime[sub.spec.Priority]; sub.pass < vt {
				sub.pass = vt
			}
		}
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Close stops Push (ErrClosed) and lets Pop drain the remaining items
// before reporting ok=false. Idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Len returns the total queued item count.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// LenTenant returns one tenant's queued item count (0 for unknown names).
func (q *Queue[T]) LenTenant(name string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if sub, ok := q.subs[name]; ok {
		return sub.len()
	}
	return 0
}

// Popped returns one tenant's cumulative dispatch count (0 for unknown
// names) — the numerator of its achieved share.
func (q *Queue[T]) Popped(name string) uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if sub, ok := q.subs[name]; ok {
		return sub.popped
	}
	return 0
}
