package batch

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/graph"
	"repro/internal/model"
)

// benchSinkless builds count independent sinkless instances on cycles of n
// nodes — the T2-sized small-instance workload batching is for.
func benchSinkless(b *testing.B, count, n int) []*model.Instance {
	b.Helper()
	insts := make([]*model.Instance, count)
	for i := range insts {
		s, err := apps.NewSinklessWithMargin(graph.Cycle(n), 0.9)
		if err != nil {
			b.Fatal(err)
		}
		insts[i] = s.Instance
	}
	return insts
}

func benchSeeds(count int) []uint64 {
	seeds := make([]uint64, count)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// BenchmarkPackedBatch measures the packing amortization directly at
// n = 1000: "one" is a single instance, "solo-64" runs 64 distinct
// instances as 64 separate engine runs (the pre-batching serving path),
// "packed-64" runs the same 64 instances as one packed run. Packing pays
// the per-round pool dispatch and termination scan once per packed round
// instead of once per instance per round.
func BenchmarkPackedBatch(b *testing.B) {
	const n = 1000
	check := func(b *testing.B, results []Result, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		for k, res := range results {
			if !res.Satisfied {
				b.Fatalf("instance %d unsatisfied", k)
			}
		}
	}

	b.Run("one", func(b *testing.B) {
		p := Pack(benchSinkless(b, 1, n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results, err := RunParallelMT(p, benchSeeds(1), Options{})
			check(b, results, err)
		}
	})
	b.Run("solo-64", func(b *testing.B) {
		insts := benchSinkless(b, 64, n)
		seeds := benchSeeds(64)
		packs := make([]*Packed, len(insts))
		for i, inst := range insts {
			packs[i] = Pack([]*model.Instance{inst})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k, p := range packs {
				results, err := RunParallelMT(p, seeds[k:k+1], Options{})
				check(b, results, err)
			}
		}
	})
	b.Run("packed-64", func(b *testing.B) {
		p := Pack(benchSinkless(b, 64, n))
		seeds := benchSeeds(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results, err := RunParallelMT(p, seeds, Options{})
			check(b, results, err)
		}
	})
}
