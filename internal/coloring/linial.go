package coloring

import (
	"fmt"

	"repro/internal/gf"
)

// Step describes one Linial colour-reduction iteration: a palette of size K
// shrinks to q² in a single communication round, where q is prime,
// t = ⌈log_q K⌉, and q ≥ Δ(t−1)+1 guarantees every node finds an evaluation
// point avoiding all neighbors.
type Step struct {
	K int // palette size before the step
	Q int // field order
	T int // number of base-q digits (polynomial length)
}

// NewK returns the palette size after the step.
func (s Step) NewK() int { return s.Q * s.Q }

// PlanStep returns the best (smallest new palette) Linial step from K
// colours at maximum degree delta, or ok=false if no step makes progress
// (the fixpoint, reached at K = O(Δ²)).
func PlanStep(k, delta int) (Step, bool) {
	if delta < 1 {
		delta = 1
	}
	for q := 2; q*q < k; q = gf.NextPrime(q + 1) {
		if !gf.IsPrime(q) {
			continue
		}
		t := digitsNeeded(k, q)
		if t >= 2 && q >= delta*(t-1)+1 {
			return Step{K: k, Q: q, T: t}, true
		}
	}
	return Step{}, false
}

// digitsNeeded returns ⌈log_q k⌉, the number of base-q digits required to
// write every colour in [0, k).
func digitsNeeded(k, q int) int {
	t := 1
	pow := q
	for pow < k {
		pow *= q
		t++
	}
	return t
}

// Schedule returns the full sequence of Linial steps from an initial palette
// of k0 colours down to the fixpoint, which every node can compute locally
// from (k0, Δ) — this is what keeps the distributed machines synchronized
// without communication. The length of the schedule is O(log* k0).
func Schedule(k0, delta int) []Step {
	var steps []Step
	k := k0
	for {
		s, ok := PlanStep(k, delta)
		if !ok {
			return steps
		}
		steps = append(steps, s)
		k = s.NewK()
	}
}

// FinalPalette returns the palette size after running the whole schedule.
func FinalPalette(k0, delta int) int {
	k := k0
	for _, s := range Schedule(k0, delta) {
		k = s.NewK()
	}
	return k
}

// Reduce performs one node's side of a Linial step: given the node's colour,
// its neighbors' colours (all in [0, s.K), all different from the node's)
// and the step parameters, it returns the node's new colour in [0, s.NewK()).
//
// The node's colour is read as a degree-(t−1) polynomial over GF(q) (base-q
// digits as coefficients); since distinct colours give distinct polynomials
// agreeing on at most t−1 points, at most Δ(t−1) < q evaluation points are
// "blocked" and a free point x exists. The new colour is the pair
// (x, g(x)) encoded as x·q + g(x).
func Reduce(s Step, color int, neighborColors []int) (int, error) {
	if color < 0 || color >= s.K {
		return 0, fmt.Errorf("coloring: colour %d outside palette [0, %d)", color, s.K)
	}
	f := gf.New(s.Q)
	mine := gf.Digits(color, s.Q, s.T)
	blocked := make([]bool, s.Q)
	for _, nc := range neighborColors {
		if nc == color {
			return 0, fmt.Errorf("coloring: neighbour shares colour %d (input not proper)", color)
		}
		if nc < 0 || nc >= s.K {
			return 0, fmt.Errorf("coloring: neighbour colour %d outside palette [0, %d)", nc, s.K)
		}
		theirs := gf.Digits(nc, s.Q, s.T)
		for x := 0; x < s.Q; x++ {
			if !blocked[x] && f.Eval(mine, x) == f.Eval(theirs, x) {
				blocked[x] = true
			}
		}
	}
	for x := 0; x < s.Q; x++ {
		if !blocked[x] {
			return x*s.Q + f.Eval(mine, x), nil
		}
	}
	return 0, fmt.Errorf("coloring: no free evaluation point (degree exceeds the step's Δ bound: %d neighbours, q=%d, t=%d)", len(neighborColors), s.Q, s.T)
}
