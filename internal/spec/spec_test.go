package spec

import (
	"bytes"
	"errors"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/model"
	"repro/internal/prng"
)

// roundTrip saves and reloads an instance, comparing the core parameters
// and a sample of conditional probabilities.
func roundTrip(t *testing.T, inst *model.Instance) *model.Instance {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, inst); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.NumVars() != inst.NumVars() || loaded.NumEvents() != inst.NumEvents() {
		t.Fatalf("shape changed: (%d,%d) -> (%d,%d)",
			inst.NumVars(), inst.NumEvents(), loaded.NumVars(), loaded.NumEvents())
	}
	p0, d0, r0 := inst.Params()
	p1, d1, r1 := loaded.Params()
	if math.Abs(p0-p1) > 1e-12 || d0 != d1 || r0 != r1 {
		t.Fatalf("params changed: (%v,%d,%d) -> (%v,%d,%d)", p0, d0, r0, p1, d1, r1)
	}
	// Random partial assignments must give identical conditional
	// probabilities.
	r := prng.New(11)
	for trial := 0; trial < 20; trial++ {
		a0 := model.NewAssignment(inst)
		a1 := model.NewAssignment(loaded)
		for v := 0; v < inst.NumVars(); v++ {
			if r.Bool() {
				val := r.Intn(inst.Var(v).Dist.Size())
				a0.Fix(v, val)
				a1.Fix(v, val)
			}
		}
		for e := 0; e < inst.NumEvents(); e++ {
			q0 := inst.CondProb(e, a0)
			q1 := loaded.CondProb(e, a1)
			if math.Abs(q0-q1) > 1e-12 {
				t.Fatalf("event %d: CondProb %v -> %v", e, q0, q1)
			}
		}
	}
	return loaded
}

func TestRoundTripSinkless(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(8), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, s.Instance)
}

func TestRoundTripHyperSinkless(t *testing.T) {
	r := prng.New(1)
	h, err := hypergraph.RandomRegularRank3(12, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, s.Instance)
}

func TestRoundTripWeakSplitting(t *testing.T) {
	r := prng.New(2)
	adj, err := apps.RandomBiregular(9, 3, 9, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := apps.NewWeakSplitting(adj, 9, 16)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, w.Instance)
}

func TestEncodeRejectsUntaggedEvents(t *testing.T) {
	b := model.NewBuilder()
	x := b.AddVariable(dist.Uniform(2), "x")
	b.AddEvent([]int{x}, func(v []int) bool { return v[0] == 1 }, nil, "custom")
	inst := b.MustBuild()
	if _, err := Encode(inst); !errors.Is(err, ErrUnsupportedEvent) {
		t.Fatalf("err = %v, want ErrUnsupportedEvent", err)
	}
}

func TestLoadValidation(t *testing.T) {
	tests := []struct {
		name string
		json string
	}{
		{"wrong version", `{"version":2,"variables":[],"events":[]}`},
		{"bad probs", `{"version":1,"variables":[{"probs":[0.5,0.4]}],"events":[]}`},
		{"scope out of range", `{"version":1,"variables":[{"probs":[0.5,0.5]}],
			"events":[{"kind":"allEqual","scope":[0,1]}]}`},
		{"unknown kind", `{"version":1,"variables":[{"probs":[0.5,0.5]}],
			"events":[{"kind":"xor","scope":[0]}]}`},
		{"bad-set value out of range", `{"version":1,"variables":[{"probs":[0.5,0.5]}],
			"events":[{"kind":"conjunction","scope":[0],"badSets":[[3]]}]}`},
		{"bad-set count mismatch", `{"version":1,"variables":[{"probs":[0.5,0.5]}],
			"events":[{"kind":"conjunction","scope":[0],"badSets":[[0],[1]]}]}`},
		{"unknown field", `{"version":1,"variables":[],"events":[],"bogus":1}`},
		{"garbage", `{`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tt.json)); err == nil {
				t.Fatalf("Load accepted %s", tt.json)
			}
		})
	}
}

func TestSolveLoadedInstance(t *testing.T) {
	// End-to-end: a saved instance must load and be solvable with the same
	// guarantee.
	s, err := apps.NewSinklessBiasedCycle(10, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, s.Instance)
	ok, margin := loaded.ExponentialCriterion()
	if !ok {
		t.Fatalf("loaded instance off criterion: %v", margin)
	}
}

func TestJSONShape(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(4), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, s.Instance); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version": 1`, `"probs"`, `"kind": "conjunction"`, `"badSets"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestGoldenFileLoads(t *testing.T) {
	// The committed golden file pins the on-disk format: if the schema
	// changes incompatibly, this test fails before users' files break.
	f, err := os.Open("testdata/sinkless_c6.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	inst, err := Load(f)
	if err != nil {
		t.Fatalf("golden file no longer loads: %v", err)
	}
	if inst.NumEvents() != 6 || inst.NumVars() != 6 {
		t.Fatalf("golden instance shape changed: vars=%d events=%d", inst.NumVars(), inst.NumEvents())
	}
	ok, margin := inst.ExponentialCriterion()
	if !ok || math.Abs(margin-0.8) > 1e-9 {
		t.Fatalf("golden instance margin = %v", margin)
	}
}
