package model

import (
	"fmt"
	"sort"

	"repro/internal/dist"
)

// This file implements the instance transformation the paper invokes twice:
// "if an edge is associated with more than one random variable we can encode
// these random variables in one new random variable" (Section 2), and
// footnote 3: "it is straightforward to reformulate the instance in a way
// that combines variables affecting the same r events". Combine merges every
// group of variables with identical affected-event sets into a single
// product variable; the transformed instance has the same events, the same
// dependency graph, the same p, d and r — but at most one variable per
// hyperedge of the variable hypergraph.

// MaxCombinedValues caps the product value-space size of one combined
// variable; Combine fails beyond it rather than building an unusably large
// distribution.
const MaxCombinedValues = 1 << 20

// Combined is the result of combining an instance's variables.
type Combined struct {
	// Instance is the transformed instance.
	Instance *Instance
	// Groups maps each combined variable to the original variable
	// identifiers it encodes, in ascending order. Singleton groups are
	// kept as-is (fresh variable, same distribution).
	Groups [][]int

	orig *Instance
	// radix[g][i] is the value-space size of Groups[g][i].
	radix [][]int
}

// Combine merges all variables of inst that affect exactly the same set of
// events into single product variables.
func Combine(inst *Instance) (*Combined, error) {
	// Group variables by their affected-event sets.
	type group struct {
		key  string
		vars []int
	}
	byKey := make(map[string]*group)
	var order []string // deterministic group ordering by first variable
	for vid := 0; vid < inst.NumVars(); vid++ {
		events := append([]int(nil), inst.Var(vid).Events...)
		sort.Ints(events)
		key := fmt.Sprint(events)
		g, ok := byKey[key]
		if !ok {
			g = &group{key: key}
			byKey[key] = g
			order = append(order, key)
		}
		g.vars = append(g.vars, vid)
	}

	c := &Combined{orig: inst}
	b := NewBuilder()
	newVarOf := make([]int, inst.NumVars()) // original var -> combined var
	for _, key := range order {
		g := byKey[key]
		size := 1
		for _, vid := range g.vars {
			k := inst.Var(vid).Dist.Size()
			if size > MaxCombinedValues/k {
				return nil, fmt.Errorf("model: combined variable for group %v exceeds %d values", g.vars, MaxCombinedValues)
			}
			size *= k
		}
		var d *dist.Distribution
		if len(g.vars) == 1 {
			d = inst.Var(g.vars[0]).Dist
		} else {
			probs := make([]float64, size)
			radix := make([]int, len(g.vars))
			for i, vid := range g.vars {
				radix[i] = inst.Var(vid).Dist.Size()
			}
			for val := 0; val < size; val++ {
				p := 1.0
				v := val
				for i, vid := range g.vars {
					p *= inst.Var(vid).Dist.Prob(v % radix[i])
					v /= radix[i]
				}
				probs[val] = p
			}
			var err error
			d, err = dist.New(probs)
			if err != nil {
				return nil, fmt.Errorf("model: building product distribution for group %v: %w", g.vars, err)
			}
		}
		newID := b.AddVariable(d, fmt.Sprintf("combined%v", g.vars))
		radix := make([]int, len(g.vars))
		for i, vid := range g.vars {
			radix[i] = inst.Var(vid).Dist.Size()
			newVarOf[vid] = newID
		}
		c.Groups = append(c.Groups, append([]int(nil), g.vars...))
		c.radix = append(c.radix, radix)
	}

	// Rebuild events: each original scope decomposes into whole groups
	// (variables in one group affect identical event sets, so group
	// membership in a scope is all-or-nothing).
	for eid := 0; eid < inst.NumEvents(); eid++ {
		ev := inst.Event(eid)
		seen := make(map[int]bool)
		var newScope []int
		for _, vid := range ev.Scope {
			nv := newVarOf[vid]
			if !seen[nv] {
				seen[nv] = true
				newScope = append(newScope, nv)
			}
		}
		// Positions of each original scope variable inside the new scope's
		// decoded tuples.
		type slot struct {
			scopePos int // index into newScope
			digit    int // index within the group
		}
		slots := make([]slot, len(ev.Scope))
		for i, vid := range ev.Scope {
			nv := newVarOf[vid]
			scopePos := -1
			for j, s := range newScope {
				if s == nv {
					scopePos = j
					break
				}
			}
			digit := -1
			for j, member := range c.Groups[nv] {
				if member == vid {
					digit = j
					break
				}
			}
			slots[i] = slot{scopePos: scopePos, digit: digit}
		}
		radixes := c.radix
		groups := c.Groups
		scope := newScope
		origBad := ev.Bad
		bad := func(vals []int) bool {
			orig := make([]int, len(slots))
			for i, s := range slots {
				v := vals[s.scopePos]
				nv := scope[s.scopePos]
				for j := 0; j < s.digit; j++ {
					v /= radixes[nv][j]
				}
				_ = groups
				orig[i] = v % radixes[nv][s.digit]
			}
			return origBad(orig)
		}
		b.AddEvent(newScope, bad, nil, ev.Name)
	}

	combined, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("model: building combined instance: %w", err)
	}
	c.Instance = combined
	return c, nil
}

// Expand translates a complete assignment of the combined instance back
// into an assignment of the original instance.
func (c *Combined) Expand(a *Assignment) *Assignment {
	out := NewAssignment(c.orig)
	for nv, group := range c.Groups {
		v := a.Value(nv)
		for i, vid := range group {
			out.Fix(vid, v%c.radix[nv][i])
			v /= c.radix[nv][i]
		}
	}
	return out
}
