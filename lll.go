package lll

import (
	"context"
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/conjecture"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/lb"
	"repro/internal/local"
	"repro/internal/model"
	"repro/internal/mt"
	"repro/internal/prng"
	"repro/internal/spec"
	"repro/internal/srep"
)

// Core model types.
type (
	// Instance is an immutable LLL instance: variables, events, and the
	// derived dependency graph and variable hypergraph.
	Instance = model.Instance
	// InstanceBuilder accumulates variables and events.
	InstanceBuilder = model.Builder
	// Assignment is a partial assignment of values to variables.
	Assignment = model.Assignment
	// Event is a bad event (scope, predicate, optional closed form).
	Event = model.Event
	// Variable is a discrete random variable of an instance.
	Variable = model.Variable
	// CondProbFunc is an optional closed-form conditional probability.
	CondProbFunc = model.CondProbFunc
	// Distribution is a finite discrete distribution.
	Distribution = dist.Distribution
)

// Solver types.
type (
	// Options configures the deterministic fixers.
	Options = core.Options
	// Strategy selects among feasible values (min-score, first,
	// adversarial).
	Strategy = core.Strategy
	// Result is the outcome of a sequential fixing run.
	Result = core.Result
	// Stats summarizes what a fixing run did.
	Stats = core.Stats
	// DistResult is the outcome of a distributed fixing run.
	DistResult = core.DistResult
	// PStar is the paper's per-edge bookkeeping (property P*).
	PStar = core.PStar
	// LocalOptions configures the LOCAL-model runtime (IDs, round limits).
	LocalOptions = local.Options
	// MTResult is the outcome of a Moser-Tardos run.
	MTResult = mt.Result
)

// Topology types.
type (
	// Graph is a simple undirected graph (dependency graphs, topologies).
	Graph = graph.Graph
	// GraphBuilder accumulates edges.
	GraphBuilder = graph.Builder
	// Hypergraph is the variable hypergraph H = (V, F).
	Hypergraph = hypergraph.Hypergraph
	// HypergraphBuilder accumulates hyperedges.
	HypergraphBuilder = hypergraph.Builder
	// Rand is the deterministic PRNG used across the library.
	Rand = prng.Rand
)

// Application types.
type (
	// Sinkless is a (relaxed) sinkless-orientation instance.
	Sinkless = apps.Sinkless
	// HyperSinkless is the rank-3 relaxed sinkless-orientation instance.
	HyperSinkless = apps.HyperSinkless
	// ThreeOrientations is the paper's hypergraph 3-orientation problem.
	ThreeOrientations = apps.ThreeOrientations
	// WeakSplitting is the relaxed weak-splitting instance.
	WeakSplitting = apps.WeakSplitting
)

// Value-choice strategies for Options.Strategy.
const (
	// StrategyMinScore greedily minimizes the resulting increase budget
	// (the default).
	StrategyMinScore = core.StrategyMinScore
	// StrategyFirst takes the first feasible value.
	StrategyFirst = core.StrategyFirst
	// StrategyAdversarial takes the worst feasible value — useful for
	// probing the sharp threshold.
	StrategyAdversarial = core.StrategyAdversarial
)

// NewInstanceBuilder returns an empty LLL instance builder.
func NewInstanceBuilder() *InstanceBuilder { return model.NewBuilder() }

// CombinedInstance is an instance whose same-event-set variables have been
// merged into product variables (the paper's Section 2 / footnote 3
// reformulation).
type CombinedInstance = model.Combined

// Combine merges all variables of inst affecting identical event sets into
// single product variables: the transformed instance has the same events,
// dependency graph, p, d and r, but at most one variable per hyperedge —
// the normal form Theorem 1.1 is stated in. Use Expand on the result to
// translate a solution back to the original variables.
func Combine(inst *Instance) (*CombinedInstance, error) { return model.Combine(inst) }

// NewRand returns a deterministic PRNG seeded with seed.
func NewRand(seed uint64) *Rand { return prng.New(seed) }

// Uniform returns the uniform distribution over k values.
func Uniform(k int) *Distribution { return dist.Uniform(k) }

// NewDistribution returns a distribution with the given probabilities
// (strictly positive, summing to one).
func NewDistribution(probs []float64) (*Distribution, error) { return dist.New(probs) }

// Bernoulli returns a two-valued distribution with Pr[1] = p.
func Bernoulli(p float64) (*Distribution, error) { return dist.Bernoulli(p) }

// Graph constructors.

// NewGraphBuilder returns a builder for a graph on n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// NewCycle returns the cycle C_n (n >= 3).
func NewCycle(n int) *Graph { return graph.Cycle(n) }

// NewPath returns the path on n nodes.
func NewPath(n int) *Graph { return graph.Path(n) }

// NewGrid returns the rows x cols grid graph.
func NewGrid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// NewTorus returns the rows x cols torus (4-regular).
func NewTorus(rows, cols int) *Graph { return graph.Torus(rows, cols) }

// NewComplete returns the complete graph K_n.
func NewComplete(n int) *Graph { return graph.Complete(n) }

// NewRandomRegular returns a random d-regular simple graph on n nodes.
func NewRandomRegular(n, d int, r *Rand) (*Graph, error) { return graph.RandomRegular(n, d, r) }

// NewRandomTree returns a uniformly random labelled tree on n nodes.
func NewRandomTree(n int, r *Rand) *Graph { return graph.RandomTree(n, r) }

// Hypergraph constructors.

// NewHypergraphBuilder returns a builder for a hypergraph on n nodes.
func NewHypergraphBuilder(n int) *HypergraphBuilder { return hypergraph.NewBuilder(n) }

// NewRandomRegularRank3 returns a random 3-uniform hypergraph where every
// node lies in exactly deg hyperedges (n·deg divisible by 3).
func NewRandomRegularRank3(n, deg int, r *Rand) (*Hypergraph, error) {
	return hypergraph.RandomRegularRank3(n, deg, r)
}

// Application builders.

// NewSinkless builds a (relaxed) sinkless-orientation instance on g with
// slack δ ∈ [0, 1); δ = 0 is the exact-threshold instance.
func NewSinkless(g *Graph, slack float64) (*Sinkless, error) { return apps.NewSinkless(g, slack) }

// NewSinklessWithMargin builds a relaxed sinkless-orientation instance on a
// regular graph with the exact exponential-criterion margin p·2^d.
func NewSinklessWithMargin(g *Graph, margin float64) (*Sinkless, error) {
	return apps.NewSinklessWithMargin(g, margin)
}

// NewSinklessBiased builds a sinkless-orientation instance whose edges point
// at alphaHead[edgeID] with probability alpha and at the other endpoint with
// probability 1-alpha (no third value): every fixing step must commit to a
// real orientation. nil alphaHead defaults to the lower endpoint.
func NewSinklessBiased(g *Graph, alpha float64, alphaHead []int) (*Sinkless, error) {
	return apps.NewSinklessBiased(g, alpha, alphaHead)
}

// NewSinklessBiasedCycle builds the balanced biased family on the cycle
// C_n, with criterion margin exactly 4·alpha·(1-alpha).
func NewSinklessBiasedCycle(n int, alpha float64) (*Sinkless, error) {
	return apps.NewSinklessBiasedCycle(n, alpha)
}

// NewHyperSinkless builds the rank-3 relaxed sinkless-orientation instance.
func NewHyperSinkless(h *Hypergraph, slack float64) (*HyperSinkless, error) {
	return apps.NewHyperSinkless(h, slack)
}

// NewThreeOrientations builds the paper's hypergraph 3-orientation instance
// (every node must avoid being a sink in at least two of three
// orientations).
func NewThreeOrientations(h *Hypergraph) (*ThreeOrientations, error) {
	return apps.NewThreeOrientations(h)
}

// NewWeakSplitting builds the relaxed weak-splitting instance from V-side
// adjacency lists over numU U-nodes with the given palette.
func NewWeakSplitting(vNeighbors [][]int, numU, colors int) (*WeakSplitting, error) {
	return apps.NewWeakSplitting(vNeighbors, numU, colors)
}

// NewRandomBiregular generates V-side adjacency lists for a random
// bipartite graph with nV V-nodes of degree kV and nU U-nodes of degree rU
// (nV·kV must equal nU·rU). It is the standard workload generator for
// NewWeakSplitting.
func NewRandomBiregular(nV, kV, nU, rU int, r *Rand) ([][]int, error) {
	return apps.RandomBiregular(nV, kV, nU, rU, r)
}

// Solvers.

// Solve runs the paper's sequential deterministic fixing process
// (Theorem 1.1 for rank-2 variables, Theorem 1.3 for rank-3) in variable
// order. Under the criterion p < 2^-d the result provably violates no
// event. Use SolveInOrder for a custom (or adversarial) order.
func Solve(inst *Instance, opts Options) (*Result, error) {
	return core.FixSequential(inst, nil, opts)
}

// SolveInOrder is Solve with an explicit fixing order (a permutation of the
// variable identifiers). The guarantee holds for every order.
func SolveInOrder(inst *Instance, order []int, opts Options) (*Result, error) {
	return core.FixSequential(inst, order, opts)
}

// SolveCtx is Solve with cancellation: when ctx becomes done the fixer
// stops between fixing steps and returns the partial Result (variables
// fixed so far) together with an error wrapping ctx.Err(). The distributed
// solvers are cancelled through LocalOptions.Ctx instead.
func SolveCtx(ctx context.Context, inst *Instance, opts Options) (*Result, error) {
	return core.FixSequentialCtx(ctx, inst, nil, opts)
}

// SolveDistributed runs the distributed deterministic algorithm on the
// instance's dependency graph: Corollary 1.2 (edge-colour classes) when
// every variable affects at most two events, Corollary 1.4 (distance-2
// colour classes) otherwise. Round counts are reported in DistResult.
func SolveDistributed(inst *Instance, opts Options, lopts LocalOptions) (*DistResult, error) {
	if inst.Rank() <= 2 {
		return core.FixDistributed2(inst, opts, lopts)
	}
	return core.FixDistributed3(inst, opts, lopts)
}

// MoserTardos runs the sequential Moser-Tardos resampler (the classic
// randomized baseline). maxResamplings = 0 means a large default.
func MoserTardos(inst *Instance, r *Rand, maxResamplings int) (*MTResult, error) {
	return mt.Sequential(inst, r, maxResamplings)
}

// MoserTardosParallel runs the parallel (round-based) Moser-Tardos variant.
func MoserTardosParallel(inst *Instance, r *Rand, maxRounds int) (*MTResult, error) {
	return mt.Parallel(inst, r, maxRounds)
}

// MoserTardosCtx is MoserTardos with cancellation: checked between
// resampling iterations, returning the partial MTResult and an error
// wrapping ctx.Err() once the context is done.
func MoserTardosCtx(ctx context.Context, inst *Instance, r *Rand, maxResamplings int) (*MTResult, error) {
	return mt.SequentialCtx(ctx, inst, r, maxResamplings, mt.Observer{})
}

// MoserTardosParallelCtx is MoserTardosParallel with cancellation: checked
// between rounds, returning the partial MTResult and an error wrapping
// ctx.Err() once the context is done.
func MoserTardosParallelCtx(ctx context.Context, inst *Instance, r *Rand, maxRounds int) (*MTResult, error) {
	return mt.ParallelCtx(ctx, inst, r, maxRounds, mt.Observer{})
}

// MTDistResult is the outcome of a distributed Moser-Tardos run.
type MTDistResult = mt.DistResult

// MoserTardosDistributed runs the parallel Moser-Tardos resampler as an
// actual LOCAL algorithm on the dependency graph (3 rounds per resampling
// iteration, fixed iteration budget; 0 means the default).
func MoserTardosDistributed(inst *Instance, seed uint64, maxIters int, lopts LocalOptions) (*MTDistResult, error) {
	return mt.Distributed(inst, seed, maxIters, lopts)
}

// LowerBoundCertificate is an exact decision about radius-t edge-view
// algorithms for sinkless orientation on small-ID cycles (internal/lb).
type LowerBoundCertificate = lb.Certificate

// DecideLowerBound decides, exactly (via 2-SAT over all radius-t
// orientation rules), whether ANY deterministic radius-t edge-view
// algorithm solves sinkless orientation on all cycles with distinct IDs
// from {0..m-1}. UNSAT results are machine-checked impossibility
// certificates for the problem sitting exactly at the threshold p = 2^-d.
func DecideLowerBound(radius, m int) (*LowerBoundCertificate, error) {
	return lb.Decide(radius, m)
}

// Summary is a one-stop description of an instance's LLL parameters.
type Summary = model.Summary

// Summarize computes the instance's LLL parameter summary (p, d, r, the
// exponential margin p·2^d, the Moser-Tardos value e·p·(d+1), and size
// statistics).
func Summarize(inst *Instance) Summary { return inst.Summarize() }

// CheckExponentialCriterion reports whether p < 2^-d holds for the instance
// and returns the margin p·2^d; the deterministic guarantee requires
// margin < 1.
func CheckExponentialCriterion(inst *Instance) (ok bool, margin float64) {
	return inst.ExponentialCriterion()
}

// CheckLocalExponentialCriterion reports the per-event form of the
// criterion — Pr[E_v]·2^(d_v) < 1 for every event, with d_v the event's own
// dependency degree. This is the inequality the proofs actually use; it is
// weaker than the symmetric p·2^d < 1 on irregular instances, and the
// fixers' guarantee holds under it.
func CheckLocalExponentialCriterion(inst *Instance) (ok bool, maxMargin float64) {
	return inst.LocalExponentialCriterion()
}

// RandomConjunctionInstance is the margin-calibrated random conjunction
// stress family (arbitrary bad tuples, exact per-event margins).
type RandomConjunctionInstance = apps.RandomConjunction

// NewRandomConjunction builds the stress family over hypergraph h: every
// event's probability is exactly margin·2^-d_v for its own dependency
// degree.
func NewRandomConjunction(h *Hypergraph, values int, margin float64, r *Rand) (*RandomConjunctionInstance, error) {
	return apps.NewRandomConjunction(h, values, margin, r)
}

// Representable-triple geometry (Section 3.2 of the paper).

// SurfaceF evaluates the boundary surface f(a, b) of the set of
// representable triples (Lemma 3.5).
func SurfaceF(a, b float64) float64 { return srep.F(a, b) }

// IsRepresentable reports whether the triple (a, b, c) is representable
// (Definition 3.3), within the library's default tolerance.
func IsRepresentable(a, b, c float64) bool {
	return srep.IsRepresentable(a, b, c, srep.DefaultTol)
}

// DecomposeTriple returns a witness (the six edge values of
// Definition 3.3) for a representable triple.
func DecomposeTriple(a, b, c float64) (srep.Witness, error) { return srep.Decompose(a, b, c) }

// Experiments re-exports: the harness behind cmd/ and the benchmarks.

// ExperimentSizes tunes experiment workloads.
type ExperimentSizes = exp.Sizes

// ExperimentTable is one rendered experiment result.
type ExperimentTable = exp.Table

// RunAllExperiments regenerates every figure and table of the paper
// (F1, F2, T1-T8 in DESIGN.md).
func RunAllExperiments(seed uint64, sz ExperimentSizes) ([]*ExperimentTable, error) {
	return exp.All(seed, sz)
}

// Conjecture 1.5 exploration (rank r >= 4; empirical, not proven).

// ConjectureResult is the outcome of a generalized (any-rank) sequential
// fixing run.
type ConjectureResult = conjecture.Result

// ConjectureDistResult is the outcome of a generalized distributed run.
type ConjectureDistResult = conjecture.DistResult

// SolveAnyRank runs the generalized sequential fixer of internal/conjecture
// on an instance of ANY rank: the Theorem 1.3 machinery with the closed-form
// representability test replaced by a sound numeric feasibility search.
// Strictly below the threshold, Conjecture 1.5 predicts it always succeeds;
// inspect Stats.Infeasible and Stats.FinalViolatedEvents.
func SolveAnyRank(inst *Instance, order []int) (*ConjectureResult, error) {
	return conjecture.FixSequentialR(inst, order)
}

// SolveDistributedAnyRank runs the distributed generalized fixer (the
// algorithm Conjecture 1.5 claims exists for every rank).
func SolveDistributedAnyRank(inst *Instance, lopts LocalOptions) (*ConjectureDistResult, error) {
	return conjecture.FixDistributedR(inst, lopts)
}

// NewRandomRegularUniform returns a random k-uniform hypergraph where every
// node lies in exactly deg hyperedges (n·deg divisible by k).
func NewRandomRegularUniform(n, deg, k int, r *Rand) (*Hypergraph, error) {
	return hypergraph.RandomRegularUniform(n, deg, k, r)
}

// NewHyperSinklessUniform builds the relaxed sinkless-orientation instance
// on a k-uniform hypergraph (rank-k variables; k >= 4 is the Conjecture 1.5
// regime).
func NewHyperSinklessUniform(h *Hypergraph, k int, slack float64) (*HyperSinkless, error) {
	return apps.NewHyperSinklessUniform(h, k, slack)
}

// Adaptive adversaries: the theorems hold even when an adversary chooses
// the next variable to fix AFTER seeing everything fixed so far.

// AdversaryState is the read-only view handed to an adaptive adversary.
type AdversaryState = core.AdversaryState

// Adversary picks the next variable to fix.
type Adversary = core.Adversary

// SolveAdaptive runs the sequential fixer with the order chosen step by
// step by the adversary; the below-threshold guarantee is unchanged.
func SolveAdaptive(inst *Instance, adversary Adversary, opts Options) (*Result, error) {
	return core.FixSequentialAdaptive(inst, adversary, opts)
}

// GreedyAdversary is the built-in worst-case-seeking adaptive adversary.
func GreedyAdversary(state *AdversaryState) int { return core.GreedyAdversary(state) }

// Trace records the individual decisions of a sequential fixing run (pass
// a fresh &Trace{} in Options.Trace); it exports to CSV.
type Trace = core.Trace

// TraceStep is one recorded fixing decision.
type TraceStep = core.TraceStep

// SaveInstance writes inst as portable JSON. Only instances whose events
// were built by the helper families (conjunction, all-equal) — which
// includes every application builder in this library — are serializable.
func SaveInstance(w io.Writer, inst *Instance) error { return spec.Save(w, inst) }

// LoadInstance reads a JSON instance description written by SaveInstance.
func LoadInstance(r io.Reader) (*Instance, error) { return spec.Load(r) }

// Validate sanity-checks an instance for the fixers: rank at most 3 and a
// satisfied exponential criterion. It returns a descriptive error naming
// the failing condition, or nil.
func Validate(inst *Instance) error {
	if r := inst.Rank(); r > 3 {
		return fmt.Errorf("lll: rank %d > 3: the paper's processes cover r <= 3 (r > 3 is Conjecture 1.5)", r)
	}
	if ok, margin := inst.ExponentialCriterion(); !ok {
		return fmt.Errorf("lll: criterion p < 2^-d violated: p*2^d = %v >= 1 (no deterministic guarantee; the fixers still run)", margin)
	}
	return nil
}
