package batch_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/batch"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/model"
	"repro/internal/prng"
)

// permuteInstance rebuilds a conjunction-built instance under a random
// isomorphism: variables are relabeled, events are reordered, and every
// event's scope (with its parallel bad sets) is permuted. The result is a
// different in-memory construction of the same abstract instance.
func permuteInstance(t *testing.T, inst *model.Instance, r *prng.Rand) *model.Instance {
	t.Helper()
	n := inst.NumVars()
	varPerm := r.Perm(n) // varPerm[old] = new identifier
	oldOf := make([]int, n)
	for old, nw := range varPerm {
		oldOf[nw] = old
	}

	b := model.NewBuilder()
	for nw := 0; nw < n; nw++ {
		v := inst.Var(oldOf[nw])
		if got := b.AddVariable(v.Dist, v.Name); got != nw {
			t.Fatalf("builder assigned id %d, want %d", got, nw)
		}
	}

	for _, old := range r.Perm(inst.NumEvents()) {
		e := inst.Event(old)
		spec, ok := e.Spec.(model.ConjunctionSpec)
		if !ok {
			t.Fatalf("event %d is not conjunction-built (%T)", old, e.Spec)
		}
		k := len(e.Scope)
		scopePerm := r.Perm(k)
		scope := make([]int, k)
		badSets := make([][]int, k)
		dists := make([]*dist.Distribution, k)
		for i, j := range scopePerm {
			scope[i] = varPerm[e.Scope[j]]
			badSets[i] = spec.BadSets[j]
			dists[i] = inst.Var(e.Scope[j]).Dist
		}
		model.AddConjunctionEvent(b, scope, badSets, dists, e.Name)
	}
	out, err := b.Build()
	if err != nil {
		t.Fatalf("rebuilding permuted instance: %v", err)
	}
	return out
}

// TestHashIsomorphismInvariant locks in the canonical property: any
// relabeling of variables, reordering of events and permutation of scopes
// hashes identically. This is what lets the service cache collapse
// differently-constructed but equal instances onto one entry.
func TestHashIsomorphismInvariant(t *testing.T) {
	builds := map[string]*model.Instance{}
	s, err := apps.NewSinklessWithMargin(graph.Cycle(16), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	builds["sinkless-cycle"] = s.Instance

	h, err := hypergraph.RandomRegularRank3(18, 2, prng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	hs, err := apps.NewHyperSinkless(h, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	builds["hyper-sinkless"] = hs.Instance

	for name, inst := range builds {
		want := batch.Hash(inst)
		if again := batch.Hash(inst); again != want {
			t.Fatalf("%s: Hash not deterministic: %x vs %x", name, want, again)
		}
		r := prng.New(99)
		for trial := 0; trial < 5; trial++ {
			perm := permuteInstance(t, inst, r)
			if got := batch.Hash(perm); got != want {
				t.Fatalf("%s trial %d: permuted build hashes %x, original %x", name, trial, got, want)
			}
		}
	}
}

// TestHashDistinguishes checks that genuinely different instances —
// different sizes, different margins (distribution probabilities),
// different families — get pairwise distinct fingerprints.
func TestHashDistinguishes(t *testing.T) {
	var hashes []uint64
	var labels []string
	add := func(label string, inst *model.Instance, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		hashes = append(hashes, batch.Hash(inst))
		labels = append(labels, label)
	}

	for _, n := range []int{12, 13, 24} {
		s, err := apps.NewSinklessWithMargin(graph.Cycle(n), 0.9)
		add("cycle margin 0.9", s.Instance, err)
	}
	s, err := apps.NewSinklessWithMargin(graph.Cycle(12), 0.8)
	add("cycle-12 margin 0.8", s.Instance, err)
	s2, err := apps.NewSinklessWithMargin(graph.Torus(3, 4), 0.9)
	add("torus-3x4 margin 0.9", s2.Instance, err)

	h, err := hypergraph.RandomRegularRank3(12, 2, prng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	hs, err := apps.NewHyperSinkless(h, 0.5)
	add("hyper-12", hs.Instance, err)

	for i := range hashes {
		for j := i + 1; j < len(hashes); j++ {
			if hashes[i] == hashes[j] {
				t.Fatalf("hash collision between %q and %q: %x", labels[i], labels[j], hashes[i])
			}
		}
	}
}

// TestHashOpaqueEvents covers hand-written events (nil Spec): the hash
// falls back to the unconditional probability, so predicates with different
// probabilities must differ while rebuilt identical ones must agree.
func TestHashOpaqueEvents(t *testing.T) {
	build := func(threshold int) *model.Instance {
		b := model.NewBuilder()
		v0 := b.AddVariable(dist.Uniform(4), "a")
		v1 := b.AddVariable(dist.Uniform(4), "b")
		b.AddEvent([]int{v0, v1}, func(vals []int) bool { return vals[0]+vals[1] < threshold }, nil, "sum")
		return b.MustBuild()
	}
	h1, h1b, h2 := batch.Hash(build(2)), batch.Hash(build(2)), batch.Hash(build(5))
	if h1 != h1b {
		t.Fatalf("identical opaque instances hash differently: %x vs %x", h1, h1b)
	}
	if h1 == h2 {
		t.Fatalf("opaque instances with different probabilities collide: %x", h1)
	}
}
