package srep

import (
	"math"
	"testing"

	"repro/internal/prng"
)

// interiorPoint samples a point of U' = {a, b > 0, a+b < 4}, bounded away
// from the boundary so finite differences stay accurate.
func interiorPoint(r *prng.Rand) (float64, float64) {
	for {
		a := 0.2 + r.Float64()*3.6
		b := 0.2 + r.Float64()*3.6
		if a+b < 3.8 {
			return a, b
		}
	}
}

func TestGradientMatchesFiniteDifferences(t *testing.T) {
	r := prng.New(41)
	const h = 1e-6
	for i := 0; i < 2000; i++ {
		a, b := interiorPoint(r)
		numA := (F(a+h, b) - F(a-h, b)) / (2 * h)
		numB := (F(a, b+h) - F(a, b-h)) / (2 * h)
		if math.Abs(FGradA(a, b)-numA) > 1e-5*(1+math.Abs(numA)) {
			t.Fatalf("∂f/∂a at (%v,%v): closed %v vs numeric %v", a, b, FGradA(a, b), numA)
		}
		if math.Abs(FGradB(a, b)-numB) > 1e-5*(1+math.Abs(numB)) {
			t.Fatalf("∂f/∂b at (%v,%v): closed %v vs numeric %v", a, b, FGradB(a, b), numB)
		}
	}
}

func TestHessianMatchesFiniteDifferences(t *testing.T) {
	r := prng.New(43)
	const h = 1e-4
	for i := 0; i < 2000; i++ {
		a, b := interiorPoint(r)
		numAA := (F(a+h, b) - 2*F(a, b) + F(a-h, b)) / (h * h)
		numBB := (F(a, b+h) - 2*F(a, b) + F(a, b-h)) / (h * h)
		numAB := (F(a+h, b+h) - F(a+h, b-h) - F(a-h, b+h) + F(a-h, b-h)) / (4 * h * h)
		if math.Abs(FHessAA(a, b)-numAA) > 1e-3*(1+math.Abs(numAA)) {
			t.Fatalf("∂²f/∂a² at (%v,%v): closed %v vs numeric %v", a, b, FHessAA(a, b), numAA)
		}
		if math.Abs(FHessBB(a, b)-numBB) > 1e-3*(1+math.Abs(numBB)) {
			t.Fatalf("∂²f/∂b² at (%v,%v): closed %v vs numeric %v", a, b, FHessBB(a, b), numBB)
		}
		if math.Abs(FHessAB(a, b)-numAB) > 1e-3*(1+math.Abs(numAB)) {
			t.Fatalf("∂²f/∂a∂b at (%v,%v): closed %v vs numeric %v", a, b, FHessAB(a, b), numAB)
		}
	}
}

func TestHessianDetMatchesMinorProduct(t *testing.T) {
	// The appendix's closed form for the determinant must equal
	// f_aa·f_bb − f_ab² computed from the individual entries.
	r := prng.New(47)
	for i := 0; i < 5000; i++ {
		a, b := interiorPoint(r)
		direct := FHessAA(a, b)*FHessBB(a, b) - sq(FHessAB(a, b))
		closed := HessianDet(a, b)
		if math.Abs(direct-closed) > 1e-9*(1+math.Abs(direct)) {
			t.Fatalf("det mismatch at (%v,%v): %v vs %v", a, b, direct, closed)
		}
	}
}

func TestLemma36PositiveDefiniteEverywhere(t *testing.T) {
	// Sylvester's criterion on a dense grid plus random samples: both
	// leading principal minors strictly positive on U' (Lemma 3.6).
	for a := 0.05; a < 4; a += 0.05 {
		for b := 0.05; a+b < 4-0.01; b += 0.05 {
			if !HessianPositiveDefinite(a, b) {
				t.Fatalf("Hessian not positive definite at (%v, %v): f_aa=%v det=%v",
					a, b, FHessAA(a, b), HessianDet(a, b))
			}
		}
	}
	r := prng.New(53)
	for i := 0; i < 20000; i++ {
		a := r.Float64() * 4
		b := r.Float64() * (4 - a)
		if a < 1e-6 || b < 1e-6 || a+b > 4-1e-6 {
			continue
		}
		if !HessianPositiveDefinite(a, b) {
			t.Fatalf("Hessian not positive definite at random (%v, %v)", a, b)
		}
	}
}

func TestHessianDetBoundsFromAppendix(t *testing.T) {
	// The appendix's final inequality uses
	// 0 < (√((4−a)(4−b)) − √(ab))² < 16 on U'; verify it directly.
	r := prng.New(59)
	for i := 0; i < 10000; i++ {
		a, b := interiorPoint(r)
		v := sq(math.Sqrt((4-a)*(4-b)) - math.Sqrt(a*b))
		if v <= 0 || v >= 16 {
			t.Fatalf("appendix inequality violated at (%v,%v): %v", a, b, v)
		}
	}
}

func TestGradientAtSymmetricPoint(t *testing.T) {
	// At a = b the radicand is (a(4−a))² so the gradient simplifies:
	// ∂f/∂a = ½(a − 2 − (4−2a)/2) = a − 2 ... verify against formula.
	for _, a := range []float64{0.5, 1, 1.5, 1.9} {
		want := 0.5 * (a - 2 - (4-2*a)/2)
		if got := FGradA(a, a); math.Abs(got-want) > 1e-12 {
			t.Fatalf("∂f/∂a at (%v,%v) = %v, want %v", a, a, got, want)
		}
	}
}

func BenchmarkHessianDet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = HessianDet(1.2, 1.7)
	}
}
