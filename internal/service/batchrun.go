package service

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/model"
)

// batchAlgorithms that pack into shared engine runs. The LOCAL-model
// algorithms (dist, mtdist) hold their state per simulated node with
// identifiers drawn over the whole node range, so packing would change
// their results; batch jobs run them per instance instead.
func packable(alg string) bool {
	switch alg {
	case AlgMTPar, AlgMTSeq, AlgOneShot, AlgSeq:
		return true
	}
	return false
}

// groupKey buckets batch instances that can share one packed engine run:
// same algorithm, same termination budgets.
type groupKey struct {
	alg                                string
	maxRounds, maxResamplings, maxIter int
}

// batchItem is one batch instance flowing through runBatch.
type batchItem struct {
	idx  int // 0-based batch position
	spec JobSpec
	inst *model.Instance
	key  uint64 // cache key; valid iff cacheable
	pkey groupKey
}

// runBatch executes a batch job: every cache-eligible instance is first
// looked up in the canonical result cache; the misses are deduplicated
// in-batch by cache key, grouped by algorithm and budget, and each group
// runs as ONE packed engine run (internal/batch) whose per-instance
// results are bit-identical to solo jobs with the same spec — so entries
// written by a batch populate the cache for later solo jobs and vice
// versa. The LOCAL-model algorithms fall back to per-instance solo runs
// inside the batch job. Aggregate "round" events stream per packed round
// and one "instance_end" event per instance, multiplexed by
// Event.Instance (1-based).
func (s *Service) runBatch(ctx context.Context, js JobSpec, att Attempt, emit func(Event)) (*Summary, error) {
	subs := js.Batch
	sum := &Summary{
		Algorithm: "batch",
		Family:    "batch",
		Instances: make([]InstanceSummary, len(subs)),
	}
	for i := range sum.Instances {
		sum.Instances[i] = InstanceSummary{Index: i + 1, Algorithm: subs[i].Algorithm, Seed: subs[i].Seed}
	}

	// Resolve the engine pool for the packed runs: the job-level Workers
	// field (clamped by the service cap), defaulting to the shared pool.
	// Worker count never changes results (engine determinism contract).
	workers := js.Workers
	if s.cfg.MaxWorkersPerJob > 0 && (workers == 0 || workers > s.cfg.MaxWorkersPerJob) {
		workers = s.cfg.MaxWorkersPerJob
	}
	pool := engine.Shared()
	if workers > 0 && workers != runtime.GOMAXPROCS(0) {
		pool = engine.New(workers)
		defer pool.Close()
	}

	finishInstance := func(it *batchItem, isum *Summary, err error) {
		is := &sum.Instances[it.idx]
		if err != nil {
			is.Err = err.Error()
			emit(Event{Kind: "instance_end", Instance: it.idx + 1, Err: is.Err})
			return
		}
		is.Satisfied = isum.Satisfied
		is.ViolatedEvents = isum.ViolatedEvents
		is.Rounds = isum.Rounds
		is.Resamplings = isum.Resamplings
		is.VarsFixed = isum.VarsFixed
		is.CacheHit = isum.CacheHit
		emit(Event{Kind: "instance_end", Instance: it.idx + 1, CacheHit: isum.CacheHit})
	}

	// Phase 1: serve cache hits, dedupe identical misses, build the
	// instances that actually have to run. Cache-eligible specs resolve
	// their key through the spec-identity memo first, so duplicates —
	// within this batch or across earlier jobs — never pay a second
	// instance build or canonical hash. The phase is timed as a
	// "batch_prepare" span under the job's trace.
	psp, _ := s.cfg.Trace.StartSpan(ctx, "batch_prepare")
	var leaders []*batchItem
	followers := make(map[uint64][]*batchItem) // cache key → same-key items behind a leader
	leaderByKey := make(map[uint64]*batchItem)
	for i := range subs {
		if cerr := ctx.Err(); cerr != nil {
			return sum, cerr
		}
		sub := subs[i]
		it := &batchItem{idx: i, spec: sub}
		it.pkey = groupKey{alg: sub.Algorithm, maxRounds: sub.MaxRounds, maxResamplings: sub.MaxResamplings, maxIter: sub.MaxIters}
		if s.cacheable(sub) {
			key, inst, err := s.jobKeyInst(sub)
			if err != nil {
				finishInstance(it, nil, fmt.Errorf("building instance: %w", err))
				continue
			}
			it.key, it.inst = key, inst
			if cached, ok := s.cache.get(it.key); ok {
				sum.NumEvents += cached.NumEvents
				sum.NumVars += cached.NumVars
				cached.CacheHit = true
				finishInstance(it, cached, nil)
				continue
			}
			if leader, ok := leaderByKey[it.key]; ok {
				// Identical instance earlier in this batch: solve once,
				// fan the result out below.
				sum.NumEvents += leader.inst.NumEvents()
				sum.NumVars += leader.inst.NumVars()
				followers[leader.key] = append(followers[leader.key], it)
				continue
			}
			leaderByKey[it.key] = it
		}
		if it.inst == nil {
			// Memo hit (key known, nothing built) but cache miss and no
			// in-batch leader yet: this item runs, so it needs its instance.
			inst, err := buildInstance(sub)
			if err != nil {
				if s.cacheable(sub) {
					delete(leaderByKey, it.key)
				}
				finishInstance(it, nil, fmt.Errorf("building instance: %w", err))
				continue
			}
			it.inst = inst
		}
		sum.NumEvents += it.inst.NumEvents()
		sum.NumVars += it.inst.NumVars()
		leaders = append(leaders, it)
	}
	psp.End()

	// Phase 2: group the misses and run each group as one packed engine
	// run (or per-instance for the LOCAL algorithms). Groups run
	// sequentially so their round streams do not interleave.
	groups := make(map[groupKey][]*batchItem)
	var order []groupKey
	for _, it := range leaders {
		if _, ok := groups[it.pkey]; !ok {
			order = append(order, it.pkey)
		}
		groups[it.pkey] = append(groups[it.pkey], it)
	}

	complete := func(it *batchItem, isum *Summary, err error) {
		stored := err == nil && isum != nil && !isum.Partial && s.cacheable(it.spec)
		if stored {
			s.cache.put(it.key, isum)
		}
		finishInstance(it, isum, err)
		for _, f := range followers[it.key] {
			if err != nil {
				finishInstance(f, nil, err)
				continue
			}
			// A follower is a cache hit only if the leader's result actually
			// went into the cache; a partial result (cancelled mid-run) fans
			// out as a plain copy.
			dup := cloneSummary(isum)
			dup.CacheHit = stored
			finishInstance(f, dup, nil)
		}
	}

	var runErr error
	onRound := func(rs engine.RoundStats) {
		emit(Event{
			Kind: "round", Round: rs.Round, Steps: rs.Steps,
			Messages: rs.Messages, Active: rs.Active, Halted: rs.Halted,
			Dropped: rs.Dropped, Crashed: rs.Crashed,
		})
	}
	for _, gk := range order {
		items := groups[gk]
		if runErr != nil {
			break
		}
		// Each packing group gets its own sibling span; gctx parents the
		// group's packed (or solo) runs to it.
		gsp, gctx := s.cfg.Trace.StartSpan(ctx, "batch_group:"+gk.alg)
		if !packable(gk.alg) {
			for _, it := range items {
				isum, err := s.runSolo(gctx, it, att, emit)
				complete(it, isum, err)
				if err != nil && ctx.Err() != nil {
					runErr = err
					break
				}
			}
			gsp.End()
			continue
		}
		insts := make([]*model.Instance, len(items))
		seeds := make([]uint64, len(items))
		for i, it := range items {
			insts[i] = it.inst
			seeds[i] = it.spec.Seed
		}
		packed := batch.Pack(insts)
		opts := batch.Options{
			Ctx:            gctx,
			Pool:           pool,
			MaxRounds:      gk.maxRounds,
			MaxResamplings: gk.maxResamplings,
			OnRound:        onRound,
			Metrics:        s.cfg.Metrics,
		}
		var results []batch.Result
		var err error
		switch gk.alg {
		case AlgMTPar:
			results, err = batch.RunParallelMT(packed, seeds, opts)
		case AlgMTSeq:
			results, err = batch.RunSequentialMT(packed, seeds, opts)
		case AlgOneShot:
			results, err = batch.RunOneShot(packed, seeds, opts)
		case AlgSeq:
			results, err = batch.RunFixSequential(packed, opts)
		}
		if err != nil {
			runErr = err
		}
		for i, it := range items {
			if results == nil {
				complete(it, nil, err)
				continue
			}
			isum := packedSummary(it, results[i])
			if err != nil {
				isum.Partial = true
			}
			complete(it, isum, results[i].Err)
		}
		gsp.End()
	}

	// Aggregate. ViolatedEvents stays -1 (unknown) only if no instance
	// reported one.
	sum.Satisfied = len(subs) > 0
	for i := range sum.Instances {
		is := &sum.Instances[i]
		if is.Err != "" || !is.Satisfied {
			sum.Satisfied = false
		}
		sum.ViolatedEvents += is.ViolatedEvents
		sum.Resamplings += is.Resamplings
		sum.VarsFixed += is.VarsFixed
		if is.Rounds > sum.Rounds {
			sum.Rounds = is.Rounds
		}
		if is.CacheHit {
			sum.CacheHit = true // at least one instance was served cached
		}
	}
	return sum, runErr
}

// runSolo executes one non-packable batch instance through the ordinary
// single-job path, tagging its round events with the instance id. The batch
// job's real attempt number is carried through so fault injection derives a
// fresh pattern on every batch retry, like solo jobs; per-instance
// checkpoints are dropped (the batch job record holds no sub-job state).
func (s *Service) runSolo(ctx context.Context, it *batchItem, att Attempt, emit func(Event)) (*Summary, error) {
	taggedEmit := func(e Event) {
		e.Instance = it.idx + 1
		emit(e)
	}
	subAtt := Attempt{Number: att.Number, SaveCheckpoint: func(*fault.Checkpoint) {}}
	return RunSpec(ctx, it.spec, subAtt, taggedEmit, s.runOpts)
}

// packedSummary converts one packed batch.Result into the Summary the solo
// path would have produced for the same spec, field for field — that
// equivalence is what lets batch-written cache entries serve solo jobs.
func packedSummary(it *batchItem, r batch.Result) *Summary {
	isum := &Summary{
		Algorithm:      it.spec.Algorithm,
		Family:         it.spec.Family,
		NumEvents:      it.inst.NumEvents(),
		NumVars:        it.inst.NumVars(),
		Satisfied:      r.Satisfied,
		ViolatedEvents: r.ViolatedEvents,
		Rounds:         r.Rounds,
		Resamplings:    r.Resamplings,
		VarsFixed:      r.VarsFixed,
		AssignmentHash: assignmentHash(r.Assignment),
	}
	return isum
}
