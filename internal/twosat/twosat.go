// Package twosat implements a linear-time 2-SAT solver via strongly
// connected components of the implication graph (Aspvall, Plass, Tarjan
// 1979). It is the decision substrate of the finite lower-bound
// certificates in internal/lb: "does any radius-t edge-view algorithm solve
// sinkless orientation on all small-ID cycles?" is a 2-SAT instance.
package twosat

import "fmt"

// Lit is a literal: the variable index v ≥ 0 for the positive literal, and
// Not(v) for the negation.
type Lit int

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(2 * v) }

// Neg returns the negative literal of variable v.
func Neg(v int) Lit { return Lit(2*v + 1) }

// negate flips a literal.
func negate(l Lit) Lit { return l ^ 1 }

// variable returns the variable index of a literal.
func variable(l Lit) int { return int(l) / 2 }

// Solver accumulates clauses over a fixed number of variables.
type Solver struct {
	numVars int
	adj     [][]int32 // implication graph: 2*numVars literal nodes
}

// New returns a solver over numVars variables.
func New(numVars int) *Solver {
	return &Solver{
		numVars: numVars,
		adj:     make([][]int32, 2*numVars),
	}
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return s.numVars }

// AddClause adds the clause (a ∨ b) as the implications ¬a→b and ¬b→a.
func (s *Solver) AddClause(a, b Lit) {
	s.check(a)
	s.check(b)
	s.adj[negate(a)] = append(s.adj[negate(a)], int32(b))
	s.adj[negate(b)] = append(s.adj[negate(b)], int32(a))
}

// AddUnit adds the unit clause (a), i.e. (a ∨ a).
func (s *Solver) AddUnit(a Lit) { s.AddClause(a, a) }

// AddImplication adds a → b (the clause ¬a ∨ b).
func (s *Solver) AddImplication(a, b Lit) { s.AddClause(negate(a), b) }

// AddXOR constrains a ≠ b (a ⊕ b): clauses (a ∨ b) and (¬a ∨ ¬b).
func (s *Solver) AddXOR(a, b Lit) {
	s.AddClause(a, b)
	s.AddClause(negate(a), negate(b))
}

func (s *Solver) check(l Lit) {
	if l < 0 || int(l) >= 2*s.numVars {
		panic(fmt.Sprintf("twosat: literal %d outside %d variables", l, s.numVars))
	}
}

// Solve decides satisfiability; on success it also returns a satisfying
// assignment (indexed by variable).
func (s *Solver) Solve() (assignment []bool, sat bool) {
	n := 2 * s.numVars
	// Iterative Tarjan SCC.
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var (
		counter int32
		nComps  int32
		stack   []int32
	)
	type frame struct {
		v    int32
		next int
	}
	var callStack []frame
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		callStack = append(callStack[:0], frame{v: int32(start)})
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, int32(start))
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.next < len(s.adj[f.v]) {
				w := s.adj[f.v][f.next]
				f.next++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Finished v.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComps
					if w == v {
						break
					}
				}
				nComps++
			}
		}
	}

	assignment = make([]bool, s.numVars)
	for v := 0; v < s.numVars; v++ {
		p, q := comp[Pos(v)], comp[negate(Pos(v))]
		if p == q {
			return nil, false
		}
		// Tarjan numbers components in reverse topological order, so the
		// literal whose component has the SMALLER index comes later in the
		// topological order and is the one to set true.
		assignment[v] = p < q
	}
	return assignment, true
}
