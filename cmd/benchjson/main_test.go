package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU @ 2.00GHz
BenchmarkEngineRounds/pool         	     100	  12345678 ns/op	        42.50 allocs/round	   324.1 rounds/sec	    1024 B/op	      10 allocs/op
BenchmarkEngineRounds/pool-4       	     400	   3086419 ns/op	        44.25 allocs/round	  1296.4 rounds/sec	    1100 B/op	      11 allocs/op
BenchmarkLocalSinkless100k-2       	      12	  98765432 ns/op	     91011 allocs/round	    81.0 rounds/sec	 5000000 B/op	   90000 allocs/op
pkg: repro/internal/obs
BenchmarkObsDisabled-4             	1000000000	         3.600 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParse(t *testing.T) {
	doc, err := parse(bufio.NewScanner(strings.NewReader(sampleStream)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU != "Example CPU @ 2.00GHz" {
		t.Errorf("header not parsed: %+v", doc)
	}
	if len(doc.Pkgs) != 2 || doc.Pkgs[1] != "repro/internal/obs" {
		t.Errorf("pkgs = %v", doc.Pkgs)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(doc.Benchmarks))
	}

	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkEngineRounds/pool" || b0.CPUs != 1 || b0.Iterations != 100 {
		t.Errorf("first result mis-parsed: %+v", b0)
	}
	if b0.Metrics["rounds/sec"] != 324.1 || b0.Metrics["allocs/round"] != 42.5 {
		t.Errorf("custom metrics mis-parsed: %v", b0.Metrics)
	}

	b1 := doc.Benchmarks[1]
	if b1.Name != "BenchmarkEngineRounds/pool" || b1.CPUs != 4 {
		t.Errorf("-cpu suffix not split: %+v", b1)
	}
	if b1.Metrics["ns/op"] != 3086419 {
		t.Errorf("ns/op = %v", b1.Metrics["ns/op"])
	}

	b3 := doc.Benchmarks[3]
	if b3.Name != "BenchmarkObsDisabled" || b3.CPUs != 4 || b3.Metrics["allocs/op"] != 0 {
		t.Errorf("obs result mis-parsed: %+v", b3)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX",                  // short line
		"BenchmarkX 10 5 ns/op extra", // unpaired value/unit
		"BenchmarkX ten 5 ns/op",      // bad iteration count
		"BenchmarkX 10 fast ns/op",    // bad metric value
	} {
		if _, err := parse(bufio.NewScanner(strings.NewReader(bad))); err == nil {
			t.Errorf("parse(%q) succeeded, want error", bad)
		}
	}
}

func TestSplitCPUs(t *testing.T) {
	cases := []struct {
		in   string
		name string
		cpus int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkX/sub-case", "BenchmarkX/sub-case", 1},
		{"BenchmarkX/sub-case-2", "BenchmarkX/sub-case", 2},
	}
	for _, c := range cases {
		name, cpus := splitCPUs(c.in)
		if name != c.name || cpus != c.cpus {
			t.Errorf("splitCPUs(%q) = (%q, %d), want (%q, %d)", c.in, name, cpus, c.name, c.cpus)
		}
	}
}
