// Package spec serializes LLL instances to and from a portable JSON format.
//
// Arbitrary Go predicates cannot be serialized, so the format covers the
// two event families the helper constructors tag (model.ConjunctionSpec and
// model.AllEqualSpec) — which includes every application workload shipped
// in this repository. Encoding an instance with an untagged (hand-written)
// event fails with ErrUnsupportedEvent.
package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/dist"
	"repro/internal/model"
)

// Version is the current format version.
const Version = 1

// ErrUnsupportedEvent indicates an event without a serializable spec.
var ErrUnsupportedEvent = errors.New("spec: event has no serializable specification")

// Event kinds.
const (
	KindConjunction = "conjunction"
	KindAllEqual    = "allEqual"
)

// File is the top-level JSON document.
type File struct {
	Version   int        `json:"version"`
	Variables []Variable `json:"variables"`
	Events    []Event    `json:"events"`
}

// Variable describes one random variable.
type Variable struct {
	Name  string    `json:"name,omitempty"`
	Probs []float64 `json:"probs"`
}

// Event describes one bad event.
type Event struct {
	Name    string  `json:"name,omitempty"`
	Kind    string  `json:"kind"`
	Scope   []int   `json:"scope"`
	BadSets [][]int `json:"badSets,omitempty"` // KindConjunction only
}

// Encode converts an instance into its portable description. Every event
// must carry a model.ConjunctionSpec or model.AllEqualSpec tag.
func Encode(inst *model.Instance) (*File, error) {
	f := &File{Version: Version}
	for vid := 0; vid < inst.NumVars(); vid++ {
		v := inst.Var(vid)
		f.Variables = append(f.Variables, Variable{Name: v.Name, Probs: v.Dist.Probs()})
	}
	for eid := 0; eid < inst.NumEvents(); eid++ {
		ev := inst.Event(eid)
		out := Event{Name: ev.Name, Scope: append([]int(nil), ev.Scope...)}
		switch s := ev.Spec.(type) {
		case model.ConjunctionSpec:
			out.Kind = KindConjunction
			out.BadSets = make([][]int, len(s.BadSets))
			for i, set := range s.BadSets {
				out.BadSets[i] = append([]int(nil), set...)
			}
		case model.AllEqualSpec:
			out.Kind = KindAllEqual
		default:
			return nil, fmt.Errorf("%w: event %d (%s)", ErrUnsupportedEvent, eid, ev.Name)
		}
		f.Events = append(f.Events, out)
	}
	return f, nil
}

// Build reconstructs the instance described by f.
func (f *File) Build() (*model.Instance, error) {
	if f.Version != Version {
		return nil, fmt.Errorf("spec: unsupported version %d (want %d)", f.Version, Version)
	}
	b := model.NewBuilder()
	dists := make([]*dist.Distribution, len(f.Variables))
	for i, v := range f.Variables {
		d, err := dist.New(v.Probs)
		if err != nil {
			return nil, fmt.Errorf("spec: variable %d: %w", i, err)
		}
		dists[i] = d
		b.AddVariable(d, v.Name)
	}
	for i, ev := range f.Events {
		scopeDists := make([]*dist.Distribution, len(ev.Scope))
		for j, vid := range ev.Scope {
			if vid < 0 || vid >= len(dists) {
				return nil, fmt.Errorf("spec: event %d references variable %d outside [0,%d)", i, vid, len(dists))
			}
			scopeDists[j] = dists[vid]
		}
		switch ev.Kind {
		case KindConjunction:
			if len(ev.BadSets) != len(ev.Scope) {
				return nil, fmt.Errorf("spec: event %d: %d bad sets for scope of %d", i, len(ev.BadSets), len(ev.Scope))
			}
			for j, set := range ev.BadSets {
				for _, val := range set {
					if val < 0 || val >= scopeDists[j].Size() {
						return nil, fmt.Errorf("spec: event %d: bad-set value %d outside variable %d's range", i, val, ev.Scope[j])
					}
				}
			}
			model.AddConjunctionEvent(b, ev.Scope, ev.BadSets, scopeDists, ev.Name)
		case KindAllEqual:
			model.AddAllEqualEvent(b, ev.Scope, scopeDists, ev.Name)
		default:
			return nil, fmt.Errorf("spec: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("spec: building instance: %w", err)
	}
	return inst, nil
}

// Save writes the instance as indented JSON.
func Save(w io.Writer, inst *model.Instance) error {
	f, err := Encode(inst)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Load reads a JSON instance description and builds the instance.
func Load(r io.Reader) (*model.Instance, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("spec: decoding: %w", err)
	}
	return f.Build()
}
