// Command lllload is a closed-loop load generator for the llld daemon:
// each of -c workers repeatedly submits a job and follows its NDJSON event
// stream to the terminal state before submitting the next one. 429
// rejections count toward the reject rate and back off briefly. At the end
// it prints throughput, the end-to-end latency distribution (p50/p95/p99),
// the per-outcome counts, and the per-job trace IDs of the slowest decile —
// the handles to look those jobs up in the daemon's JSONL trace log or
// among the /slo exemplars.
//
// Transient transport failures are retried rather than counted as load
// errors: a 5xx submit response backs off exponentially (capped) and is
// counted separately as a "submit 5xx"; an event stream that dies before
// the terminal "end" line is re-attached with ?from=<seq> and counted as a
// "stream drop". Both counters appear in the final report, so flaky
// transports are visible without poisoning the outcome statistics.
//
// Back-pressure is classified, not lumped: a 429 is queue overflow
// ("reject"), a 503 whose body names admission shedding is the SLO control
// loop refusing a deadline it cannot meet ("shed"), and any other 503
// (draining, restart) stays a retried transient. Both reject and shed
// honor the response's Retry-After header before the worker's next
// attempt, so the closed loop backs off exactly as hard as the daemon
// asked it to.
//
// Against cmd/lllrouter the same flags work unchanged; -cluster
// additionally fetches GET /cluster after the run and appends the
// cluster report: per-node job balance (max/mean spread) and the
// router's migration and lost-job totals. Jobs moved between nodes
// mid-run are visible per job as "migrated" events and counted in the
// outcome summary.
//
// -jobs N bounds the run by completed submissions instead of (or in
// addition to) -duration: the workers stop once N jobs were admitted and
// followed to a terminal state.
//
// -batch N switches every submission to POST /v1/jobs/batch: the -spec
// becomes the template of an N-instance batch job (packed into shared
// engine runs daemon-side). -cache opts submissions into the daemon's
// canonical result cache; combined with -vary-seed=false every submission
// is identical and all but the first are served from the cache — the
// cache/single-flight exercise. -batch cannot be combined with -chaos
// (batch jobs carry no fault-injection fields).
//
// -chaos f marks a fraction f of submissions as chaos jobs: they carry
// fault-injection rates (-chaos-panic / -chaos-drop / -chaos-crash), a
// retry budget (-chaos-retries) and periodic checkpointing
// (-chaos-checkpoint), exercising the daemon's panic isolation and
// retry/resume machinery under load. The report then includes recovery
// latency — the extra time from a job's first "retry" event to its
// terminal state — over all jobs that retried at least once.
//
// -tenants switches to the multi-tenant scenario mode: a comma-separated
// list of name=profile:conc entries spawns conc workers per named tenant,
// each labelling its submissions with the tenant (the spec's "tenant"
// field) and pacing per its profile — "steady" paces submissions evenly,
// "bursty" alternates half-second full-rate bursts with idle gaps, and
// "adversarial" hammers the closed loop as fast as the daemon answers.
// Back-pressure is classified per tenant from the 429 body: a tenant rate
// limit ("throttled"), an exhausted tenant quota ("quota"), a full queue
// ("reject"), plus deadline sheds ("shed"). The report appends a per-tenant
// table: attempts, completed, achieved share of completions, p50/p99 and
// the rejection classes — the fairness ledger for a weighted-tenant run.
//
// Usage:
//
//	lllload -addr http://localhost:8080 -c 8 -duration 30s \
//	        -spec '{"family":"sinkless","n":1024,"degree":3,"algorithm":"dist"}'
//	lllload -addr http://localhost:8080 -c 8 -jobs 50 -duration 2m -chaos 0.5
//	lllload -addr http://localhost:8080 -c 4 -jobs 50 -batch 16 -cache \
//	        -spec '{"family":"sinkless","n":256,"algorithm":"mtpar"}'
//	lllload -addr http://localhost:8080 -duration 30s \
//	        -tenants 'gold=steady:4,silver=steady:2,abuser=adversarial:6'
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lllload:", err)
		os.Exit(1)
	}
}

// outcome is one completed submit attempt.
type outcome struct {
	latency time.Duration // submit → terminal event (successful jobs only)
	// state is the terminal state, or the back-pressure class: "reject"
	// (queue overflow), "throttled" (tenant rate limit), "quota" (tenant
	// quota exhausted), "shed" (deadline shed), or "error".
	state string
	// tenant is the tenant the submission was labelled with (scenario mode).
	tenant  string
	retries int // "retry" events observed on the stream
	// migrated counts "migrated" events: how many times the routing tier
	// moved this job to another node mid-run.
	migrated int
	// recovery is the extra time from the first "retry" event to the
	// terminal state (retried jobs only).
	recovery time.Duration
	// id and trace identify the job daemon-side: trace is the trace ID from
	// the terminal event, the key to the job's spans in the daemon's JSONL
	// trace log and to the /slo exemplars.
	id    string
	trace string
}

type collector struct {
	mu       sync.Mutex
	outcomes []outcome
	// http5xx counts 5xx submit responses that were retried; drops counts
	// event streams that died mid-way and were re-attached.
	http5xx int
	drops   int
}

func (c *collector) add(o outcome) {
	c.mu.Lock()
	c.outcomes = append(c.outcomes, o)
	c.mu.Unlock()
}

func (c *collector) transport(http5xx, drops int) {
	c.mu.Lock()
	c.http5xx += http5xx
	c.drops += drops
	c.mu.Unlock()
}

// chaosCfg parameterizes the chaos fraction of the load.
type chaosCfg struct {
	fraction   float64
	panicRate  float64
	dropRate   float64
	crashRate  float64
	retries    int
	checkpoint int
}

// pick deterministically marks every submission whose sequence number falls
// in the chaos fraction (submission k is chaotic iff frac(k·φ) < fraction,
// a low-discrepancy spread over the sequence).
func (cc chaosCfg) pick(seq int64) bool {
	if cc.fraction <= 0 {
		return false
	}
	const phi = 0.6180339887498949
	_, f := splitFrac(float64(seq) * phi)
	return f < cc.fraction
}

func splitFrac(x float64) (int64, float64) {
	i := int64(x)
	return i, x - float64(i)
}

func run() error {
	addr := flag.String("addr", "http://localhost:8080", "llld base URL")
	concurrency := flag.Int("c", 4, "closed-loop workers (in-flight submissions)")
	duration := flag.Duration("duration", 10*time.Second, "load duration (hard stop even with -jobs)")
	jobs := flag.Int("jobs", 0, "stop after this many admitted jobs reach a terminal state (0: duration-bound only)")
	specJSON := flag.String("spec", `{"family":"sinkless","n":512,"degree":3,"algorithm":"dist"}`, "job spec submitted by every worker")
	seedStep := flag.Bool("vary-seed", true, "give every submission a distinct seed")
	batchSize := flag.Int("batch", 0, "submit batch jobs of this many instances via /v1/jobs/batch (0: solo jobs)")
	useCache := flag.Bool("cache", false, "opt submissions into the daemon's canonical result cache")
	chaos := flag.Float64("chaos", 0, "fraction of submissions made chaos jobs (fault injection + retries + checkpoints)")
	chaosPanic := flag.Float64("chaos-panic", 0.02, "chaos jobs: per-shard-per-round panic probability")
	chaosDrop := flag.Float64("chaos-drop", 0.02, "chaos jobs: per-message drop probability")
	chaosCrash := flag.Float64("chaos-crash", 0, "chaos jobs: per-node-per-round crash-stop probability")
	chaosRetries := flag.Int("chaos-retries", 3, "chaos jobs: max_retries")
	chaosCheckpoint := flag.Int("chaos-checkpoint", 16, "chaos jobs: checkpoint_every")
	clusterReport := flag.Bool("cluster", false, "-addr is an lllrouter: append the GET /cluster balance report")
	tenantsFlag := flag.String("tenants", "", "multi-tenant scenario: name=profile:conc,... with profile steady|bursty|adversarial (overrides -c)")
	flag.Parse()

	var spec map[string]any
	if err := json.Unmarshal([]byte(*specJSON), &spec); err != nil {
		return fmt.Errorf("bad -spec: %w", err)
	}
	if *batchSize < 0 {
		return fmt.Errorf("-batch %d must be >= 0", *batchSize)
	}
	if *batchSize > 0 && *chaos > 0 {
		return fmt.Errorf("-batch cannot be combined with -chaos (batch jobs carry no fault-injection fields)")
	}
	profiles, err := parseTenantProfiles(*tenantsFlag)
	if err != nil {
		return err
	}
	cc := chaosCfg{
		fraction:   *chaos,
		panicRate:  *chaosPanic,
		dropRate:   *chaosDrop,
		crashRate:  *chaosCrash,
		retries:    *chaosRetries,
		checkpoint: *chaosCheckpoint,
	}

	sc := submitCfg{varySeed: *seedStep, batch: *batchSize, cache: *useCache}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	client := &http.Client{}
	col := &collector{}
	var seq int64
	var seqMu sync.Mutex
	nextSeq := func() int64 {
		seqMu.Lock()
		defer seqMu.Unlock()
		seq++
		return seq
	}

	// Budget: when -jobs is set, workers claim a slot before submitting and
	// hand it back when the submission never became a job (reject, submit
	// error), so the budget counts admitted jobs followed to terminal.
	var remaining atomic.Int64
	remaining.Store(int64(*jobs))
	claim := func() bool {
		if ctx.Err() != nil {
			return false
		}
		if *jobs <= 0 {
			return true
		}
		for {
			n := remaining.Load()
			if n <= 0 {
				return false
			}
			if remaining.CompareAndSwap(n, n-1) {
				return true
			}
		}
	}
	unclaim := func() {
		if *jobs > 0 {
			remaining.Add(1)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	worker := func(tsc submitCfg, pace func(context.Context, time.Time)) {
		defer wg.Done()
		for claim() {
			o := submitAndFollow(ctx, client, *addr, spec, tsc, nextSeq, cc, col)
			col.add(o)
			if backPressure(o.state) {
				unclaim()
			}
			if pace != nil {
				pace(ctx, start)
			}
		}
	}
	workers := *concurrency
	if len(profiles) == 0 {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go worker(sc, nil)
		}
	} else {
		workers = 0
		for _, p := range profiles {
			tsc := sc
			tsc.tenant = p.name
			for w := 0; w < p.conc; w++ {
				wg.Add(1)
				go worker(tsc, p.pace())
				workers++
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(col, elapsed, workers)
	if len(profiles) > 0 {
		reportTenants(col, profiles)
	}
	if *clusterReport {
		return reportCluster(client, *addr)
	}
	return nil
}

// backPressure reports whether the state names a submission that never
// became an admitted job — the worker hands its -jobs budget slot back.
func backPressure(state string) bool {
	switch state {
	case "reject", "throttled", "quota", "shed", "error":
		return true
	}
	return false
}

// tenantProfile is one entry of the -tenants scenario: conc closed-loop
// workers submitting under the tenant's name with the profile's pacing.
type tenantProfile struct {
	name    string
	profile string // steady | bursty | adversarial
	conc    int
}

// pace returns the per-iteration pacing hook of the profile, or nil for an
// unpaced loop. Steady workers space submissions evenly; bursty workers
// alternate half-second full-rate windows with half-second idle gaps (the
// worst case for a fair scheduler: synchronized backlog spikes);
// adversarial workers never pause — their only brake is the daemon's own
// back-pressure.
func (p tenantProfile) pace() func(context.Context, time.Time) {
	switch p.profile {
	case "steady":
		return func(ctx context.Context, _ time.Time) { sleepCtx(ctx, 50*time.Millisecond) }
	case "bursty":
		const period = 500 * time.Millisecond
		return func(ctx context.Context, start time.Time) {
			if phase := time.Since(start) % (2 * period); phase >= period {
				sleepCtx(ctx, 2*period-phase)
			}
		}
	default: // adversarial
		return nil
	}
}

// parseTenantProfiles parses "gold=steady:4,abuser=adversarial:6" into the
// scenario's tenant profiles; empty input means the mode is off.
func parseTenantProfiles(s string) ([]tenantProfile, error) {
	if s == "" {
		return nil, nil
	}
	var profiles []tenantProfile
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenants entry %q, want name=profile:conc", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate tenant %q in -tenants", name)
		}
		seen[name] = true
		profile, concStr, _ := strings.Cut(rest, ":")
		switch profile {
		case "steady", "bursty", "adversarial":
		default:
			return nil, fmt.Errorf("bad -tenants profile %q for %q (want steady, bursty or adversarial)", profile, name)
		}
		conc := 1
		if concStr != "" {
			n, err := strconv.Atoi(concStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad -tenants concurrency %q for %q", concStr, name)
			}
			conc = n
		}
		profiles = append(profiles, tenantProfile{name: name, profile: profile, conc: conc})
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("no tenants in -tenants %q", s)
	}
	return profiles, nil
}

// submitCfg selects the submission shape of the load: solo jobs or batch
// jobs, seed policy, cache opt-in, tenant label.
type submitCfg struct {
	varySeed bool
	batch    int // 0: solo jobs; > 0: batch jobs of this many instances
	cache    bool
	tenant   string // label submissions with this tenant ("": unlabelled)
}

// submitAndFollow runs one closed-loop iteration: POST the spec (retrying
// 5xx with backoff), then stream events until the terminal "end" line,
// re-attaching on mid-stream disconnects. The reported latency spans submit
// to terminal. In batch mode the spec becomes the template of an
// sc.batch-instance batch request.
func submitAndFollow(ctx context.Context, client *http.Client, addr string, spec map[string]any, sc submitCfg, nextSeq func() int64, cc chaosCfg, col *collector) outcome {
	n := nextSeq()
	path := "/v1/jobs"
	var body []byte
	if sc.batch > 0 {
		path = "/v1/jobs/batch"
		tmpl := make(map[string]any, len(spec)+1)
		for k, v := range spec {
			tmpl[k] = v
		}
		if sc.varySeed {
			// Seed base spaced per submission so the vary_seed stamping
			// keeps all instances of all submissions distinct.
			tmpl["seed"] = (n-1)*int64(sc.batch) + 1
		}
		req := map[string]any{
			"template":  tmpl,
			"count":     sc.batch,
			"vary_seed": sc.varySeed,
			"cache":     sc.cache,
		}
		if sc.tenant != "" {
			req["tenant"] = sc.tenant
		}
		body, _ = json.Marshal(req)
	} else {
		if sc.varySeed || sc.cache || sc.tenant != "" || cc.pick(n) {
			s := make(map[string]any, len(spec)+8)
			for k, v := range spec {
				s[k] = v
			}
			if sc.varySeed {
				s["seed"] = n
			}
			if sc.cache {
				s["cache"] = true
			}
			if sc.tenant != "" {
				s["tenant"] = sc.tenant
			}
			if cc.pick(n) {
				s["max_retries"] = cc.retries
				s["checkpoint_every"] = cc.checkpoint
				s["fault_panic_rate"] = cc.panicRate
				s["fault_drop_rate"] = cc.dropRate
				s["fault_crash_rate"] = cc.crashRate
			}
			spec = s
		}
		body, _ = json.Marshal(spec)
	}

	begin := time.Now()
	id, state, http5xx := submitJob(ctx, client, addr, path, body)
	if http5xx > 0 {
		col.transport(http5xx, 0)
	}
	if id == "" {
		return outcome{state: state, tenant: sc.tenant}
	}
	o := followJob(client, addr, id, begin, col)
	o.tenant = sc.tenant
	return o
}

// submitJob POSTs the job, treating 5xx responses as transient: they are
// retried with capped exponential backoff and counted, because a loaded or
// restarting daemon answering 500s is a recovery scenario, not a load
// error. Two back-pressure answers are terminal for the attempt and honor
// the daemon's Retry-After before returning the worker to its loop: 429
// (queue overflow, a "reject") and the 503 whose body names admission
// shedding (the SLO control loop refusing a deadline it cannot meet, a
// "shed"). Any other 503 — draining, restarting — stays a retried 5xx.
func submitJob(ctx context.Context, client *http.Client, addr, path string, body []byte) (id, state string, http5xx int) {
	backoff := 100 * time.Millisecond
	const maxAttempts = 5
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+path, bytes.NewReader(body))
		if err != nil {
			return "", "error", http5xx
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return "", "error", http5xx
		}
		switch {
		case resp.StatusCode == http.StatusAccepted:
			var view struct {
				ID string `json:"id"`
			}
			err = json.NewDecoder(resp.Body).Decode(&view)
			resp.Body.Close()
			if err != nil || view.ID == "" {
				return "", "error", http5xx
			}
			return view.ID, "", http5xx
		case resp.StatusCode == http.StatusTooManyRequests:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// Closed loop: back off as long as the daemon asked (50ms
			// when it didn't say) so a saturated queue is retried, not
			// hammered. The body distinguishes the three 429 control
			// loops: the tenant's token bucket, the tenant's quota, and
			// the shared queue overflowing.
			sleepCtx(ctx, retryAfter(resp, 50*time.Millisecond))
			switch {
			case bytes.Contains(msg, []byte("rate limit")):
				return "", "throttled", http5xx
			case bytes.Contains(msg, []byte("quota")):
				return "", "quota", http5xx
			}
			return "", "reject", http5xx
		case resp.StatusCode == http.StatusServiceUnavailable:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if bytes.Contains(msg, []byte("shed")) {
				// SLO shed: deliberate admission control, same contract
				// as a 429 — honor Retry-After, report separately.
				sleepCtx(ctx, retryAfter(resp, 50*time.Millisecond))
				return "", "shed", http5xx
			}
			if done := transient5xx(ctx, resp, &http5xx, &backoff, attempt, maxAttempts); done {
				return "", "error", http5xx
			}
		case resp.StatusCode >= 500:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if done := transient5xx(ctx, resp, &http5xx, &backoff, attempt, maxAttempts); done {
				return "", "error", http5xx
			}
		default:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return "", "error", http5xx
		}
	}
}

// transient5xx counts one retryable 5xx and sleeps the backoff — the
// response's Retry-After when present, the exponential schedule otherwise.
// It reports true when the attempt budget or the load window is exhausted.
func transient5xx(ctx context.Context, resp *http.Response, http5xx *int, backoff *time.Duration, attempt, maxAttempts int) bool {
	*http5xx++
	if attempt >= maxAttempts || ctx.Err() != nil {
		return true
	}
	wait := retryAfter(resp, *backoff)
	if !sleepCtx(ctx, wait) {
		return true
	}
	if *backoff *= 2; *backoff > 2*time.Second {
		*backoff = 2 * time.Second
	}
	return false
}

// retryAfter parses the response's Retry-After header (delay-seconds form),
// falling back to def when absent or unparseable. The wait is clamped to
// 5s: a load generator must not be parked indefinitely by one header.
func retryAfter(resp *http.Response, def time.Duration) time.Duration {
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return def
	}
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return def
	}
	d := time.Duration(secs) * time.Second
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// sleepCtx sleeps d or until the load window closes; false on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// followJob streams the job's events to the terminal line. The stream
// requests deliberately have no deadline: a job admitted before the load
// window closes is followed to completion so its latency is measured. A
// stream that dies before "end" (daemon blip, proxy timeout) is re-attached
// at the next unseen sequence number and counted as a drop.
func followJob(client *http.Client, addr, id string, begin time.Time, col *collector) outcome {
	next := 0
	state := "error"
	retries := 0
	migrated := 0
	trace := ""
	var firstRetry time.Time
	const maxAttaches = 10
	for attach := 1; attach <= maxAttaches; attach++ {
		if attach > 1 {
			col.transport(0, 1)
			time.Sleep(100 * time.Millisecond)
		}
		resp, err := client.Get(addr + "/v1/jobs/" + id + "/events?from=" + strconv.Itoa(next))
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return outcome{state: "error"}
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var e struct {
				Seq   int    `json:"seq"`
				Kind  string `json:"kind"`
				State string `json:"state"`
				Trace string `json:"trace"`
			}
			if json.Unmarshal(sc.Bytes(), &e) != nil {
				continue
			}
			next = e.Seq + 1
			switch e.Kind {
			case "retry":
				retries++
				if firstRetry.IsZero() {
					firstRetry = time.Now()
				}
			case "migrated":
				// The routing tier moved the job to another node with its
				// checkpoint: recovery machinery, measured like a retry.
				migrated++
				if firstRetry.IsZero() {
					firstRetry = time.Now()
				}
			case "end":
				state = e.State
				trace = e.Trace
			}
		}
		resp.Body.Close()
		if state != "error" {
			break // saw the terminal line; the stream is complete
		}
	}
	o := outcome{latency: time.Since(begin), state: state, retries: retries, migrated: migrated, id: id, trace: trace}
	if (retries > 0 || migrated > 0) && !firstRetry.IsZero() && state != "error" {
		o.recovery = time.Since(firstRetry)
	}
	return o
}

func report(col *collector, elapsed time.Duration, concurrency int) {
	outcomes := col.outcomes
	var latencies, recoveries []time.Duration
	var done []outcome
	counts := map[string]int{}
	retried, migratedJobs, migrations := 0, 0, 0
	for _, o := range outcomes {
		counts[o.state]++
		if o.state == "done" {
			latencies = append(latencies, o.latency)
			done = append(done, o)
		}
		if o.migrated > 0 {
			migratedJobs++
			migrations += o.migrated
		}
		if o.retries > 0 || o.migrated > 0 {
			retried++
			if o.recovery > 0 {
				recoveries = append(recoveries, o.recovery)
			}
		}
	}
	total := len(outcomes)
	rejects := counts["reject"]
	sheds := counts["shed"]
	attempts := total
	fmt.Printf("duration:    %v  (%d workers, closed loop)\n", elapsed.Round(time.Millisecond), concurrency)
	fmt.Printf("attempts:    %d  (%.1f/s)\n", attempts, float64(attempts)/elapsed.Seconds())
	fmt.Printf("completed:   %d  (%.1f/s)\n", len(latencies), float64(len(latencies))/elapsed.Seconds())
	if attempts > 0 {
		// Overflow (429, full queue), tenant back-pressure (429, rate limit
		// or quota) and SLO shed (503, deliberate refusal) are different
		// control loops; report them apart.
		fmt.Printf("reject rate: %.2f%%  (%d of %d: queue overflow)\n", 100*float64(rejects)/float64(attempts), rejects, attempts)
		if n := counts["throttled"]; n > 0 {
			fmt.Printf("throttled:   %.2f%%  (%d of %d: tenant rate limit)\n", 100*float64(n)/float64(attempts), n, attempts)
		}
		if n := counts["quota"]; n > 0 {
			fmt.Printf("quota:       %.2f%%  (%d of %d: tenant quota exhausted)\n", 100*float64(n)/float64(attempts), n, attempts)
		}
		if sheds > 0 {
			fmt.Printf("shed rate:   %.2f%%  (%d of %d: admission shed)\n", 100*float64(sheds)/float64(attempts), sheds, attempts)
		}
	}
	if migratedJobs > 0 {
		fmt.Printf("migrated:    %d jobs moved between nodes (%d moves)\n", migratedJobs, migrations)
	}
	var states []string
	for s := range counts {
		states = append(states, s)
	}
	sort.Strings(states)
	var parts []string
	for _, s := range states {
		parts = append(parts, fmt.Sprintf("%s=%d", s, counts[s]))
	}
	fmt.Printf("outcomes:    %s\n", strings.Join(parts, " "))
	if col.http5xx > 0 || col.drops > 0 {
		fmt.Printf("transport:   submit-5xx=%d stream-drops=%d (both retried)\n", col.http5xx, col.drops)
	}
	if retried > 0 {
		fmt.Printf("retried:     %d jobs saw at least one retry or migration\n", retried)
		if len(recoveries) > 0 {
			sort.Slice(recoveries, func(i, j int) bool { return recoveries[i] < recoveries[j] })
			fmt.Printf("recovery:    p50=%v p95=%v max=%v (first retry/migration → terminal)\n",
				percentile(recoveries, 0.50).Round(time.Millisecond),
				percentile(recoveries, 0.95).Round(time.Millisecond),
				recoveries[len(recoveries)-1].Round(time.Millisecond))
		}
	}
	if len(latencies) == 0 {
		return
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("latency:     p50=%v p95=%v p99=%v max=%v\n",
		percentile(latencies, 0.50).Round(time.Microsecond),
		percentile(latencies, 0.95).Round(time.Microsecond),
		percentile(latencies, 0.99).Round(time.Microsecond),
		latencies[len(latencies)-1].Round(time.Microsecond))
	reportSlowest(done)
}

// reportTenants prints the fairness ledger of a -tenants scenario run: one
// line per profile with its attempts, completions, achieved share of all
// completions (the number to hold against the configured weight ratios),
// the completion latency p50/p99, and the back-pressure classes the tenant
// hit. Share is computed over completed jobs — what the scheduler actually
// dispatched — so an adversarial tenant's rejected flood does not count as
// service received.
func reportTenants(col *collector, profiles []tenantProfile) {
	type agg struct {
		attempts, completed              int
		throttled, quota, shed, rejected int
		latencies                        []time.Duration
	}
	byTenant := map[string]*agg{}
	totalDone := 0
	col.mu.Lock()
	outcomes := col.outcomes
	col.mu.Unlock()
	for _, o := range outcomes {
		a := byTenant[o.tenant]
		if a == nil {
			a = &agg{}
			byTenant[o.tenant] = a
		}
		a.attempts++
		switch o.state {
		case "throttled":
			a.throttled++
		case "quota":
			a.quota++
		case "shed":
			a.shed++
		case "reject":
			a.rejected++
		case "done":
			a.completed++
			totalDone++
			a.latencies = append(a.latencies, o.latency)
		}
	}
	fmt.Printf("per tenant:  (%d completions total)\n", totalDone)
	for _, p := range profiles {
		a := byTenant[p.name]
		if a == nil {
			a = &agg{}
		}
		share := 0.0
		if totalDone > 0 {
			share = 100 * float64(a.completed) / float64(totalDone)
		}
		sort.Slice(a.latencies, func(i, j int) bool { return a.latencies[i] < a.latencies[j] })
		p50, p99 := percentile(a.latencies, 0.50), percentile(a.latencies, 0.99)
		// One space-separated key=value line per tenant: trivially awk-able,
		// which is how the CI fairness smoke asserts the share ratios.
		fmt.Printf("  %-12s %-14s attempts=%d completed=%d share=%.1f%% p50=%v p99=%v throttled=%d quota=%d shed=%d reject=%d\n",
			p.name, p.profile+":"+strconv.Itoa(p.conc), a.attempts, a.completed, share,
			p50.Round(time.Microsecond), p99.Round(time.Microsecond),
			a.throttled, a.quota, a.shed, a.rejected)
	}
}

// reportSlowest prints the trace IDs of the slowest decile of completed
// jobs (capped at 10 lines), slowest first — the starting points for a
// latency investigation in the daemon's JSONL trace log or against the
// /slo exemplars.
func reportSlowest(done []outcome) {
	if len(done) == 0 {
		return
	}
	sort.Slice(done, func(i, j int) bool { return done[i].latency > done[j].latency })
	n := (len(done) + 9) / 10 // ceil(10%): at least one
	if n > 10 {
		n = 10
	}
	fmt.Printf("slowest %d of %d (trace IDs for the daemon trace log / exemplars):\n", n, len(done))
	for _, o := range done[:n] {
		trace := o.trace
		if trace == "" {
			trace = "-"
		}
		fmt.Printf("  %-10s trace=%-16s latency=%v retries=%d\n", o.id, trace, o.latency.Round(time.Microsecond), o.retries)
	}
}

// reportCluster fetches the router's GET /cluster and prints the balance
// report: per-node tracked jobs against the mean (the acceptance bar is a
// max/mean spread within the router's bounded-load factor), node health,
// and the migration / lost-job totals.
func reportCluster(client *http.Client, addr string) error {
	resp, err := client.Get(addr + "/cluster")
	if err != nil {
		return fmt.Errorf("cluster report: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster report: GET /cluster answered %d (is -addr an lllrouter?)", resp.StatusCode)
	}
	var cs struct {
		Epoch int64 `json:"epoch"`
		Nodes []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"nodes"`
		Jobs       int64          `json:"jobs"`
		Migrations int64          `json:"migrations"`
		Lost       int64          `json:"lost"`
		PerNode    map[string]int `json:"per_node"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return fmt.Errorf("cluster report: %w", err)
	}

	total, max := 0, 0
	for _, n := range cs.PerNode {
		total += n
		if n > max {
			max = n
		}
	}
	// The balance denominator is the LIVE membership the router reports
	// right now — the cluster is elastic, so the node count at boot means
	// nothing. Down nodes take no traffic; counting them would flatter the
	// spread.
	live := 0
	for _, n := range cs.Nodes {
		if n.State != "down" {
			live++
		}
	}
	mean := 0.0
	if live > 0 {
		mean = float64(total) / float64(live)
	}
	fmt.Printf("cluster:     %d nodes (%d live), epoch %d, %d jobs routed, %d migrations, %d lost\n",
		len(cs.Nodes), live, cs.Epoch, cs.Jobs, cs.Migrations, cs.Lost)
	sort.Slice(cs.Nodes, func(i, j int) bool { return cs.Nodes[i].Name < cs.Nodes[j].Name })
	for _, n := range cs.Nodes {
		fmt.Printf("  node %-8s %-8s jobs=%d\n", n.Name, n.State, cs.PerNode[n.Name])
	}
	if mean > 0 {
		fmt.Printf("balance:     max/mean = %.2f over %d live nodes (max %d over mean %.1f)\n",
			float64(max)/mean, live, max, mean)
	}
	return nil
}

// percentile returns the nearest-rank percentile of the sorted slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
