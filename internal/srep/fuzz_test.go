package srep

import (
	"math"
	"testing"
)

// FuzzDecompose checks the Lemma 3.5 round trip on arbitrary inputs:
// membership and constructive decomposition must agree, and every witness
// must validate and realize its triple.
func FuzzDecompose(f *testing.F) {
	f.Add(0.25, 1.5, 0.1)
	f.Add(0.0, 0.0, 4.0)
	f.Add(2.0, 2.0, 0.0)
	f.Add(1.0, 1.0, 1.0)
	f.Add(3.9, 0.05, 0.01)
	f.Add(5.0, 5.0, 5.0)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return
		}
		in := IsRepresentable(a, b, c, DefaultTol)
		w, err := Decompose(a, b, c)
		if in && err != nil {
			t.Fatalf("representable (%v,%v,%v) failed to decompose: %v", a, b, c, err)
		}
		if !in && err == nil {
			t.Fatalf("non-representable (%v,%v,%v) decomposed to %+v", a, b, c, w)
		}
		if err == nil {
			if !w.Valid(1e-9) {
				t.Fatalf("invalid witness for (%v,%v,%v): %+v", a, b, c, w)
			}
			if !w.Realizes(a, b, c, 1e-6) {
				wa, wb, wc := w.Triple()
				t.Fatalf("witness (%v,%v,%v) does not realize (%v,%v,%v)", wa, wb, wc, a, b, c)
			}
		}
	})
}

// FuzzSurfaceConvexity probes Lemma 3.6 on arbitrary segment endpoints.
func FuzzSurfaceConvexity(f *testing.F) {
	f.Add(0.5, 0.5, 3.0, 0.5, 0.5)
	f.Add(1.0, 2.9, 2.9, 1.0, 0.25)
	f.Fuzz(func(t *testing.T, a1, b1, a2, b2, q float64) {
		inDomain := func(a, b float64) bool {
			return a >= 0 && b >= 0 && a+b <= 4 && !math.IsNaN(a) && !math.IsNaN(b)
		}
		if !inDomain(a1, b1) || !inDomain(a2, b2) || math.IsNaN(q) || q < 0 || q > 1 {
			return
		}
		lhs := F(q*a1+(1-q)*a2, q*b1+(1-q)*b2)
		rhs := q*F(a1, b1) + (1-q)*F(a2, b2)
		if lhs > rhs+1e-9 {
			t.Fatalf("convexity violated: f(mix)=%v > mix(f)=%v", lhs, rhs)
		}
	})
}
