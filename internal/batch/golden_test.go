package batch_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/model"
	"repro/internal/prng"
)

var updateGolden = flag.Bool("update", false, "rewrite golden tables under testdata")

// goldenWorkload is the fixed instance set every algorithm runs through the
// packed path. Sizes are deliberately small and mixed: the golden pins the
// exact per-instance counters AND the exact final assignments (as a hash),
// so any change to draw order, scan order or packing layout shows up as a
// byte diff.
func goldenWorkload(t *testing.T) ([]*model.Instance, []string, []uint64) {
	t.Helper()
	var insts []*model.Instance
	var names []string
	for _, n := range []int{8, 14, 20} {
		s, err := apps.NewSinklessWithMargin(graph.Cycle(n), 0.9)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, s.Instance)
		names = append(names, fmt.Sprintf("cycle-%d", n))
	}
	h, err := hypergraph.RandomRegularRank3(12, 2, prng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	hs, err := apps.NewHyperSinkless(h, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	insts = append(insts, hs.Instance)
	names = append(names, "hyper-12")

	seeds := make([]uint64, len(insts))
	for i := range seeds {
		seeds[i] = uint64(1000 + 17*i)
	}
	return insts, names, seeds
}

// assignmentHash folds a complete assignment into one stable value so the
// golden table pins the exact bits without listing every variable.
func assignmentHash(a *model.Assignment) uint64 {
	if a == nil {
		return 0
	}
	values, fixed := a.Values()
	h := uint64(len(values))
	for i, v := range values {
		x := uint64(v)
		if !fixed[i] {
			x = ^uint64(0)
		}
		h = prng.Mix64(h*0x9E3779B97F4A7C15 + x)
	}
	return h
}

// renderBatchTable runs the golden workload through every packable
// algorithm on the given pool and renders one CSV.
func renderBatchTable(t *testing.T, pool *engine.Pool) []byte {
	t.Helper()
	insts, names, seeds := goldenWorkload(t)
	p := batch.Pack(insts)
	opts := batch.Options{Pool: pool, MaxRounds: 500, MaxResamplings: 10_000}

	var buf bytes.Buffer
	buf.WriteString("alg,instance,seed,satisfied,violated,rounds,resamplings,vars_fixed,assignment\n")
	emit := func(alg string, k int, r batch.Result) {
		if r.Err != nil {
			t.Fatalf("%s %s: %v", alg, names[k], r.Err)
		}
		fmt.Fprintf(&buf, "%s,%s,%d,%v,%d,%d,%d,%d,%016x\n",
			alg, names[k], seeds[k], r.Satisfied, r.ViolatedEvents,
			r.Rounds, r.Resamplings, r.VarsFixed, assignmentHash(r.Assignment))
	}

	par, err := batch.RunParallelMT(p, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range par {
		emit("mt-parallel", k, r)
	}
	seq, err := batch.RunSequentialMT(p, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range seq {
		emit("mt-sequential", k, r)
	}
	one, err := batch.RunOneShot(p, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range one {
		emit("one-shot", k, r)
	}
	fix, err := batch.RunFixSequential(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range fix {
		emit("fix-sequential", k, r)
	}
	return buf.Bytes()
}

// TestGoldenBatchTable re-asserts the repo's golden-table discipline
// through the batched path: the packed runs of a fixed workload reproduce
// checked-in bytes exactly, at Workers 1, 2 and GOMAXPROCS.
func TestGoldenBatchTable(t *testing.T) {
	pool1 := engine.New(1)
	got := renderBatchTable(t, pool1)
	pool1.Close()

	path := filepath.Join("testdata", "batch.golden.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Workers=1 output deviates from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}

	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		pool := engine.New(workers)
		out := renderBatchTable(t, pool)
		pool.Close()
		if !bytes.Equal(out, got) {
			t.Errorf("Workers=%d output differs from Workers=1:\ngot:\n%s\nwant:\n%s", workers, out, got)
		}
	}
}
