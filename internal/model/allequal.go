package model

import "repro/internal/dist"

// AllEqual is the second frequently-occurring bad-event family: the event
// occurs iff every scope variable takes the same value (e.g. "all my
// U-neighbours got the same colour" in weak splitting). Its conditional
// probability has the closed form
//
//	Pr[E | fixed] = ∏_unfixed Pr[X_i = c]            if some fixed value c
//	                Σ_c ∏_i Pr[X_i = c]              if nothing is fixed,
//
// and 0 as soon as two fixed scope variables differ.
type AllEqual struct {
	scope []int
	dists []*dist.Distribution
	maxK  int
}

// NewAllEqual builds an AllEqual event descriptor over the given scope;
// dists[i] is the distribution of scope variable i.
func NewAllEqual(scope []int, dists []*dist.Distribution) *AllEqual {
	a := &AllEqual{
		scope: append([]int(nil), scope...),
		dists: append([]*dist.Distribution(nil), dists...),
	}
	for _, d := range dists {
		if d.Size() > a.maxK {
			a.maxK = d.Size()
		}
	}
	return a
}

// Bad is the defining predicate, suitable for Event.Bad.
func (a *AllEqual) Bad(vals []int) bool {
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[0] {
			return false
		}
	}
	return true
}

// CondProb is the closed-form conditional probability, suitable for
// Event.CondProb.
func (a *AllEqual) CondProb(vals []int, fixed []bool) float64 {
	common, haveCommon := 0, false
	for i := range vals {
		if !fixed[i] {
			continue
		}
		if haveCommon && vals[i] != common {
			return 0
		}
		common, haveCommon = vals[i], true
	}
	if haveCommon {
		p := 1.0
		for i, d := range a.dists {
			if fixed[i] {
				continue
			}
			if common >= d.Size() {
				return 0 // the common value is outside this variable's range
			}
			p *= d.Prob(common)
		}
		return p
	}
	total := 0.0
	for c := 0; c < a.maxK; c++ {
		p := 1.0
		for _, d := range a.dists {
			if c >= d.Size() {
				p = 0
				break
			}
			p *= d.Prob(c)
		}
		total += p
	}
	return total
}

// AddAllEqualEvent registers an all-equal event on b and returns its
// identifier. The event is tagged with an AllEqualSpec so it can be
// serialized by internal/spec.
func AddAllEqualEvent(b *Builder, scope []int, dists []*dist.Distribution, name string) int {
	a := NewAllEqual(scope, dists)
	id := b.AddEvent(scope, a.Bad, a.CondProb, name)
	b.events[id].Spec = AllEqualSpec{}
	return id
}

// Event specification tags. Events constructed by the helper families carry
// one of these in Event.Spec, which is what makes an instance serializable
// by internal/spec (arbitrary Go predicates are not).
type (
	// ConjunctionSpec tags a conjunction event: bad iff every scope
	// variable takes a value in its BadSets entry.
	ConjunctionSpec struct {
		BadSets [][]int
	}
	// AllEqualSpec tags an all-equal event: bad iff all scope variables
	// take the same value.
	AllEqualSpec struct{}
)
