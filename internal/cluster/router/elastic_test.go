package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
)

// startRouterCfg is startRouter with the elasticity knobs exposed.
func startRouterCfg(t *testing.T, cfg Config) (*Router, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 25 * time.Millisecond
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(r, reg))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		r.Shutdown(ctx)
		cancel()
	})
	return r, ts, reg
}

func waitNodeState(t *testing.T, r *Router, name string, want cluster.NodeState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.members.State(name) != want {
		if time.Now().After(deadline) {
			t.Fatalf("node %s stuck in %q, want %q", name, r.members.State(name), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterSkipsDownNode is the satellite regression for the detector →
// placement coupling: once the detector has a node down, placement skips
// it outright — no connection attempt, no 429-style spill accounting, no
// submit errors — and every job lands on the surviving node.
func TestRouterSkipsDownNode(t *testing.T) {
	nodes, urls := startNodes(t, 2, nil)
	r, ts, _ := startRouterCfg(t, Config{
		Nodes:    urls,
		Detector: cluster.DetectorConfig{DownAfter: 1},
	})

	// SIGKILL analog: n1's listener vanishes; the next probe marks it down.
	nodes["n1"].ts.Close()
	waitNodeState(t, r, "n1", cluster.StateDown)

	for i := 0; i < 20; i++ {
		v, status := postRouterJob(t, ts,
			fmt.Sprintf(`{"family":"sinkless","n":24,"algorithm":"mtpar","seed":%d}`, i+1))
		if status != http.StatusAccepted {
			t.Fatalf("submit %d against a half-down cluster answered %d", i, status)
		}
		if v.Node != "n2" {
			t.Fatalf("job %d placed on %q; down node must be skipped outright", i, v.Node)
		}
	}
	for _, id := range listRouterJobIDs(t, ts) {
		collectEvents(t, ts, id)
	}
	if lost := r.m.lost.Value(); lost != 0 {
		t.Fatalf("router lost %d jobs while skipping a down node", lost)
	}

	// Down nodes are out of the bounded-load mean: with n1 down the mean
	// tracks n2 alone, so it must never be dragged toward zero by the corpse.
	r.members.AddOutstanding("n2", 4)
	defer r.members.AddOutstanding("n2", -4)
	if mean := r.members.MeanOutstanding(); mean < 4 {
		t.Fatalf("MeanOutstanding = %.1f with n1 down and 4 outstanding on n2, want 4 (down node excluded)", mean)
	}
}

func listRouterJobIDs(t *testing.T, ts *httptest.Server) []string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []service.View
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(views))
	for i, v := range views {
		ids[i] = v.ID
	}
	return ids
}

// postMemberChange drives the admin POST /cluster/members and returns the
// minted membership.
func postMemberChange(t *testing.T, base string, change cluster.MemberChange) cluster.Membership {
	t.Helper()
	body, _ := json.Marshal(change)
	resp, err := http.Post(base+"/cluster/members", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /cluster/members answered %d", resp.StatusCode)
	}
	var mem cluster.Membership
	if err := json.NewDecoder(resp.Body).Decode(&mem); err != nil {
		t.Fatal(err)
	}
	return mem
}

// TestRouterHotReloadJoinLeave: the router applies an admin join without a
// restart — epoch advances, the ring includes the joiner, jobs start
// landing there, and the fan-out brings every node to the same epoch — and
// then applies the leave, after which no new placement touches the leaver.
func TestRouterHotReloadJoinLeave(t *testing.T) {
	nodes, urls := startNodes(t, 2, func(cfg *service.Config) {
		cfg.Cluster = &service.ClusterConfig{} // Self/Nodes filled by startNodes
	})
	_ = nodes
	r, ts, reg := startRouterCfg(t, Config{Nodes: urls})

	// The joiner: a clustered node that boots knowing only itself.
	h3 := &swapHandler{}
	ts3 := httptest.NewServer(h3)
	reg3 := obs.NewRegistry()
	svc3 := service.New(service.Config{
		QueueCap: 128, MaxInFlight: 4, CacheSize: 32, Metrics: reg3,
		Cluster: &service.ClusterConfig{Self: "n3", Nodes: map[string]string{"n3": ts3.URL}},
	})
	h3.set(service.NewHandler(svc3, reg3))
	t.Cleanup(func() {
		ts3.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		svc3.Shutdown(ctx)
		cancel()
	})

	joined := postMemberChange(t, ts.URL, cluster.MemberChange{Action: "join", Name: "n3", URL: ts3.URL})
	if joined.Epoch != 1 || len(joined.Nodes) != 3 {
		t.Fatalf("join minted epoch %d with %d nodes, want 1 with 3", joined.Epoch, len(joined.Nodes))
	}
	if got := r.Membership().Epoch; got != 1 {
		t.Fatalf("router epoch = %d after join, want 1 (hot reload)", got)
	}
	if got := reg.Counter("router_membership_reloads_total").Value(); got < 1 {
		t.Fatalf("router_membership_reloads_total = %d, want >= 1", got)
	}
	// The synchronous fan-out already delivered the epoch to every node.
	for name, base := range joined.Nodes {
		resp, err := http.Get(base + "/cluster")
		if err != nil {
			t.Fatalf("GET /cluster on %s: %v", name, err)
		}
		var ns struct {
			Epoch int64 `json:"epoch"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ns)
		resp.Body.Close()
		if err != nil || ns.Epoch != 1 {
			t.Fatalf("node %s at epoch %d, want 1", name, ns.Epoch)
		}
	}

	// With the ring reloaded, placement spreads onto the joiner.
	placed := map[string]int{}
	for i := 0; i < 30; i++ {
		v, status := postRouterJob(t, ts,
			fmt.Sprintf(`{"family":"sinkless","n":24,"algorithm":"mtpar","seed":%d}`, i+1))
		if status != http.StatusAccepted {
			t.Fatalf("submit %d after join answered %d", i, status)
		}
		placed[v.Node]++
	}
	if placed["n3"] == 0 {
		t.Fatalf("no job landed on the joined node: %v", placed)
	}
	for _, id := range listRouterJobIDs(t, ts) {
		collectEvents(t, ts, id)
	}

	left := postMemberChange(t, ts.URL, cluster.MemberChange{Action: "leave", Name: "n3"})
	if left.Epoch != 2 || len(left.Nodes) != 2 {
		t.Fatalf("leave minted epoch %d with %d nodes, want 2 with 2", left.Epoch, len(left.Nodes))
	}
	for i := 0; i < 20; i++ {
		v, status := postRouterJob(t, ts,
			fmt.Sprintf(`{"family":"sinkless","n":24,"algorithm":"mtpar","seed":%d}`, 100+i))
		if status != http.StatusAccepted {
			t.Fatalf("submit %d after leave answered %d", i, status)
		}
		if v.Node == "n3" {
			t.Fatal("placement still touches the departed node after the leave reload")
		}
	}
}

// TestRouterAntiEntropyAdoptsNodeEpoch: a membership change announced to a
// NODE (not the router) still reaches the router through its anti-entropy
// sync against the nodes' GET /cluster — no restart, no admin call.
func TestRouterAntiEntropyAdoptsNodeEpoch(t *testing.T) {
	nodes, urls := startNodes(t, 2, func(cfg *service.Config) {
		cfg.Cluster = &service.ClusterConfig{}
	})
	r, _, _ := startRouterCfg(t, Config{Nodes: urls, SyncInterval: 30 * time.Millisecond})

	// A join lands on node n1 directly; the router is not told.
	h3 := &swapHandler{}
	ts3 := httptest.NewServer(h3)
	reg3 := obs.NewRegistry()
	svc3 := service.New(service.Config{
		QueueCap: 16, MaxInFlight: 2, CacheSize: 8, Metrics: reg3,
		Cluster: &service.ClusterConfig{Self: "n3", Nodes: map[string]string{"n3": ts3.URL}},
	})
	h3.set(service.NewHandler(svc3, reg3))
	t.Cleanup(func() {
		ts3.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		svc3.Shutdown(ctx)
		cancel()
	})
	postMemberChange(t, nodes["n1"].ts.URL, cluster.MemberChange{Action: "join", Name: "n3", URL: ts3.URL})

	deadline := time.Now().Add(5 * time.Second)
	for r.Membership().Epoch < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("router never adopted epoch 1 from the nodes (stuck at %d)", r.Membership().Epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := r.Membership().Nodes["n3"]; !ok {
		t.Fatal("router adopted the epoch but not the joiner")
	}
}
