# Development entry points for the LLL reproduction.

GO ?= go

.PHONY: build test test-race vet bench bench-json harness cover fuzz clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Race-detector pass over the sharded execution engine and its consumers
# (the LOCAL runtime, distributed Moser-Tardos, the distributed fixers), the
# observability layer they report into, the fault-injection/recovery layer,
# and the job service on top.
test-race:
	$(GO) test -race ./internal/local/... ./internal/mt/... ./internal/core/... ./internal/engine/... ./internal/obs/... ./internal/fault/... ./internal/service/...

# One benchmark per paper figure/table plus solver micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark evidence: the n = 100k engine and LOCAL-runtime
# benchmarks at 1/2/4 workers (-cpu sets GOMAXPROCS, the pool follows) plus
# the obs hot-path micro-benches, parsed into BENCH_pr2.json.
bench-json:
	$(GO) test -run=NONE -bench 'BenchmarkEngineRounds|BenchmarkLocalSinkless100k' -benchmem -cpu 1,2,4 . > bench.out
	$(GO) test -run=NONE -bench 'BenchmarkObs' -benchmem ./internal/obs >> bench.out
	$(GO) run ./cmd/benchjson -out BENCH_pr2.json < bench.out
	rm -f bench.out

# Regenerate every experiment table (F1, F2, T1..T11).
harness:
	$(GO) run ./cmd/benchharness

cover:
	$(GO) test -cover ./...

# Short fuzzing pass over the geometry and the numeric solver.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecompose -fuzztime=10s ./internal/srep/
	$(GO) test -run=NONE -fuzz=FuzzSurfaceConvexity -fuzztime=10s ./internal/srep/
	$(GO) test -run=NONE -fuzz=FuzzFeasibleSoundness -fuzztime=10s ./internal/conjecture/

clean:
	$(GO) clean -testcache
