package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/prng"
)

func TestAdaptiveGreedyAdversaryRank2(t *testing.T) {
	// The theorem's strongest form: even an adversary that adaptively
	// steers towards the tightest budget corner cannot force a violation
	// below the threshold.
	for _, alpha := range []float64{0.35, 0.45, 0.49} {
		s, err := apps.NewSinklessBiasedCycle(14, alpha)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FixSequentialAdaptive(s.Instance, GreedyAdversary, Options{Audit: true})
		if err != nil {
			t.Fatal(err)
		}
		assertSolved(t, res)
		if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
			t.Fatalf("alpha=%v: sinks %v", alpha, sinks)
		}
	}
}

func TestAdaptiveGreedyAdversaryRank3(t *testing.T) {
	r := prng.New(201)
	h, err := hypergraph.RandomRegularRank3(18, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategyMinScore, StrategyAdversarial} {
		res, err := FixSequentialAdaptive(s.Instance, GreedyAdversary, Options{Strategy: strat, Audit: true})
		if err != nil {
			t.Fatal(err)
		}
		assertSolved(t, res)
		if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
			t.Fatalf("strat %d: sinks %v", strat, sinks)
		}
	}
}

func TestAdaptiveRoundRobinMatchesSequential(t *testing.T) {
	// Replaying a fixed order adaptively must reproduce FixSequential
	// exactly (same choices, same assignment).
	s, err := apps.NewSinklessBiasedCycle(12, 0.42)
	if err != nil {
		t.Fatal(err)
	}
	r := prng.New(202)
	order := r.Perm(s.Instance.NumVars())
	seq, err := FixSequential(s.Instance, order, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adp, err := FixSequentialAdaptive(s.Instance, RoundRobinAdversary(order), Options{})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := seq.Assignment.Values()
	v2, _ := adp.Assignment.Values()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("variable %d: sequential %d vs adaptive %d", i, v1[i], v2[i])
		}
	}
}

func TestAdaptiveRejectsBadAdversary(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(4), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FixSequentialAdaptive(s.Instance, nil, Options{}); err == nil {
		t.Fatal("nil adversary accepted")
	}
	stubborn := func(state *AdversaryState) int { return 0 }
	// Variable 0 gets fixed in step 1; picking it again must error.
	if _, err := FixSequentialAdaptive(s.Instance, stubborn, Options{}); err == nil {
		t.Fatal("adversary repeating a fixed variable accepted")
	}
}

func TestAdaptiveAdversaryAtThreshold(t *testing.T) {
	// At the threshold the adaptive adversary combined with adversarial
	// value choices can force failures — the lower-bound side again.
	s, err := apps.NewSinkless(graph.Cycle(8), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FixSequentialAdaptive(s.Instance, GreedyAdversary, Options{Strategy: StrategyAdversarial})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PeakCertBound < 1-1e-9 {
		t.Fatalf("peak certified bound %v should reach 1 at the threshold", res.Stats.PeakCertBound)
	}
}

func BenchmarkAdaptiveGreedyAdversary(b *testing.B) {
	s, err := apps.NewSinklessBiasedCycle(32, 0.42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FixSequentialAdaptive(s.Instance, GreedyAdversary, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
