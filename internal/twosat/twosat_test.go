package twosat

import (
	"testing"

	"repro/internal/prng"
)

func TestSimpleSat(t *testing.T) {
	s := New(2)
	s.AddClause(Pos(0), Pos(1))
	s.AddClause(Neg(0), Pos(1))
	a, sat := s.Solve()
	if !sat {
		t.Fatal("satisfiable instance reported UNSAT")
	}
	// Both clauses demand x1 when x0 is either value... verify directly.
	check := func(c [2]Lit) bool {
		val := func(l Lit) bool {
			v := a[int(l)/2]
			if int(l)%2 == 1 {
				v = !v
			}
			return v
		}
		return val(c[0]) || val(c[1])
	}
	for _, c := range [][2]Lit{{Pos(0), Pos(1)}, {Neg(0), Pos(1)}} {
		if !check(c) {
			t.Fatalf("assignment %v violates clause %v", a, c)
		}
	}
}

func TestSimpleUnsat(t *testing.T) {
	// (x) ∧ (¬x) is unsatisfiable.
	s := New(1)
	s.AddUnit(Pos(0))
	s.AddUnit(Neg(0))
	if _, sat := s.Solve(); sat {
		t.Fatal("unsatisfiable instance reported SAT")
	}
}

func TestXOR(t *testing.T) {
	s := New(2)
	s.AddXOR(Pos(0), Pos(1))
	a, sat := s.Solve()
	if !sat {
		t.Fatal("XOR should be satisfiable")
	}
	if a[0] == a[1] {
		t.Fatalf("XOR violated: %v", a)
	}
	// Forcing equality on top makes it UNSAT.
	s.AddUnit(Pos(0))
	s.AddUnit(Pos(1))
	if _, sat := s.Solve(); sat {
		t.Fatal("x ⊕ y ∧ x ∧ y should be UNSAT")
	}
}

func TestImplicationChain(t *testing.T) {
	// x0 → x1 → x2 → ¬x0 forces ¬x0; adding unit x0 makes it UNSAT.
	s := New(3)
	s.AddImplication(Pos(0), Pos(1))
	s.AddImplication(Pos(1), Pos(2))
	s.AddImplication(Pos(2), Neg(0))
	a, sat := s.Solve()
	if !sat {
		t.Fatal("chain should be satisfiable")
	}
	if a[0] {
		t.Fatal("x0 must be false")
	}
	s.AddUnit(Pos(0))
	if _, sat := s.Solve(); sat {
		t.Fatal("chain + x0 should be UNSAT")
	}
}

// bruteForce decides satisfiability by enumeration (n <= 16).
func bruteForce(n int, clauses [][2]Lit) bool {
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, c := range clauses {
			val := func(l Lit) bool {
				v := mask>>(int(l)/2)&1 == 1
				if int(l)%2 == 1 {
					v = !v
				}
				return v
			}
			if !val(c[0]) && !val(c[1]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandomAgainstBruteForce(t *testing.T) {
	r := prng.New(7)
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(8)
		numClauses := 1 + r.Intn(3*n)
		clauses := make([][2]Lit, numClauses)
		s := New(n)
		for i := range clauses {
			a := Lit(r.Intn(2 * n))
			b := Lit(r.Intn(2 * n))
			clauses[i] = [2]Lit{a, b}
			s.AddClause(a, b)
		}
		a, sat := s.Solve()
		want := bruteForce(n, clauses)
		if sat != want {
			t.Fatalf("trial %d: solver %v, brute force %v (clauses %v)", trial, sat, want, clauses)
		}
		if sat {
			// The returned assignment must actually satisfy all clauses.
			for _, c := range clauses {
				val := func(l Lit) bool {
					v := a[int(l)/2]
					if int(l)%2 == 1 {
						v = !v
					}
					return v
				}
				if !val(c[0]) && !val(c[1]) {
					t.Fatalf("trial %d: assignment violates clause %v", trial, c)
				}
			}
		}
	}
}

func TestLiteralRangePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range literal should panic")
		}
	}()
	New(1).AddClause(Pos(5), Pos(0))
}

func BenchmarkSolveChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(2000)
		for v := 0; v+1 < 2000; v++ {
			s.AddImplication(Pos(v), Pos(v+1))
		}
		if _, sat := s.Solve(); !sat {
			b.Fatal("chain should be SAT")
		}
	}
}
