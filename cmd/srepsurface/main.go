// Command srepsurface emits the data behind Figure 1 — the boundary surface
// c = f(a, b) of the set S_rep of representable triples — as CSV, verifies
// the incurvedness property on random chords, and prints the Figure 2
// witness decomposition.
//
// Usage:
//
//	srepsurface [-step F] [-chords N] [-seed N] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/prng"
	"repro/internal/srep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "srepsurface:", err)
		os.Exit(1)
	}
}

func run() error {
	step := flag.Float64("step", 0.05, "grid step for the surface sample")
	chords := flag.Int("chords", 100000, "random chords for the incurvedness check")
	seed := flag.Uint64("seed", 1, "seed for the chord sampling")
	csv := flag.Bool("csv", false, "emit the raw surface grid as CSV (a,b,f) instead of tables")
	flag.Parse()

	if *csv {
		fmt.Println("a,b,f")
		for _, p := range srep.SurfaceGrid(*step) {
			fmt.Printf("%.6f,%.6f,%.6f\n", p.A, p.B, p.C)
		}
		return verifyChords(*chords, *seed)
	}

	tbl, err := exp.F1Surface(0.5, *chords, *seed)
	if tbl != nil {
		tbl.Render(os.Stdout)
	}
	if err != nil {
		return err
	}
	wit, err := exp.F2Witness()
	if wit != nil {
		wit.Render(os.Stdout)
	}
	return err
}

func verifyChords(chords int, seed uint64) error {
	r := prng.New(seed)
	tested := 0
	for tested < chords {
		s := srep.Triple{A: r.Float64() * 5, B: r.Float64() * 5, C: r.Float64() * 5}
		o := srep.Triple{A: r.Float64() * 5, B: r.Float64() * 5, C: r.Float64() * 5}
		if s.In(srep.DefaultTol) || o.In(srep.DefaultTol) {
			continue
		}
		tested++
		if srep.ChordViolation(s, o, r.Float64(), srep.DefaultTol) {
			return fmt.Errorf("incurvedness violation: %+v -- %+v", s, o)
		}
	}
	fmt.Fprintf(os.Stderr, "incurvedness verified on %d chords\n", tested)
	return nil
}
