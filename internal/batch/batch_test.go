package batch_test

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/model"
	"repro/internal/mt"
	"repro/internal/obs"
	"repro/internal/prng"
)

// testInstances builds a mixed bag of below-threshold instances of
// different families and sizes, so the packed runs exercise uneven segment
// lengths and staggered per-instance termination.
func testInstances(t *testing.T) []*model.Instance {
	t.Helper()
	var insts []*model.Instance
	for _, n := range []int{6, 12, 30} {
		s, err := apps.NewSinklessWithMargin(graph.Cycle(n), 0.9)
		if err != nil {
			t.Fatalf("sinkless cycle %d: %v", n, err)
		}
		insts = append(insts, s.Instance)
	}
	h, err := hypergraph.RandomRegularRank3(18, 2, prng.New(7))
	if err != nil {
		t.Fatalf("hypergraph: %v", err)
	}
	hs, err := apps.NewHyperSinkless(h, 0.5)
	if err != nil {
		t.Fatalf("hyper sinkless: %v", err)
	}
	return append(insts, hs.Instance)
}

func testSeeds(n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i)*0x9e37 + 1
	}
	return seeds
}

// workerCounts are the pool sizes every equivalence claim is checked under
// (the determinism contract: worker count never changes results).
func workerCounts() []int {
	counts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 {
		counts = append(counts, p)
	}
	return counts
}

func sameValues(t *testing.T, label string, want, got *model.Assignment) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil assignment", label)
	}
	wv, wf := want.Values()
	gv, gf := got.Values()
	if len(wv) != len(gv) {
		t.Fatalf("%s: %d values, want %d", label, len(gv), len(wv))
	}
	for i := range wv {
		if wf[i] != gf[i] || (wf[i] && wv[i] != gv[i]) {
			t.Fatalf("%s: variable %d = (%d,%v), want (%d,%v)", label, i, gv[i], gf[i], wv[i], wf[i])
		}
	}
}

func TestRunParallelMTMatchesSolo(t *testing.T) {
	insts := testInstances(t)
	seeds := testSeeds(len(insts))
	const maxRounds = 500

	solo := make([]*mt.Result, len(insts))
	for k, inst := range insts {
		res, err := mt.Parallel(inst, prng.New(seeds[k]), maxRounds)
		if err != nil {
			t.Fatalf("solo parallel %d: %v", k, err)
		}
		if !res.Satisfied {
			t.Fatalf("solo parallel %d not satisfied (test instances should converge)", k)
		}
		solo[k] = res
	}

	p := batch.Pack(insts)
	for _, w := range workerCounts() {
		pool := engine.New(w)
		results, err := batch.RunParallelMT(p, seeds, batch.Options{Pool: pool, MaxRounds: maxRounds})
		pool.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for k, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d instance %d: %v", w, k, r.Err)
			}
			if r.Satisfied != solo[k].Satisfied || r.Rounds != solo[k].Rounds || r.Resamplings != solo[k].Resamplings {
				t.Fatalf("workers=%d instance %d: (sat=%v rounds=%d res=%d), solo (sat=%v rounds=%d res=%d)",
					w, k, r.Satisfied, r.Rounds, r.Resamplings,
					solo[k].Satisfied, solo[k].Rounds, solo[k].Resamplings)
			}
			sameValues(t, "parallel assignment", solo[k].Assignment, r.Assignment)
		}
	}
}

func TestRunSequentialMTMatchesSolo(t *testing.T) {
	insts := testInstances(t)
	seeds := testSeeds(len(insts))
	const maxResamplings = 10_000

	solo := make([]*mt.Result, len(insts))
	for k, inst := range insts {
		res, err := mt.Sequential(inst, prng.New(seeds[k]), maxResamplings)
		if err != nil {
			t.Fatalf("solo sequential %d: %v", k, err)
		}
		solo[k] = res
	}

	p := batch.Pack(insts)
	for _, w := range workerCounts() {
		pool := engine.New(w)
		results, err := batch.RunSequentialMT(p, seeds, batch.Options{Pool: pool, MaxResamplings: maxResamplings})
		pool.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for k, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d instance %d: %v", w, k, r.Err)
			}
			if r.Satisfied != solo[k].Satisfied || r.Resamplings != solo[k].Resamplings {
				t.Fatalf("workers=%d instance %d: (sat=%v res=%d), solo (sat=%v res=%d)",
					w, k, r.Satisfied, r.Resamplings, solo[k].Satisfied, solo[k].Resamplings)
			}
			sameValues(t, "sequential assignment", solo[k].Assignment, r.Assignment)
		}
	}
}

// alwaysViolated is a one-variable instance whose single event always
// occurs, forcing the budget-exhaustion path of the packed runners.
func alwaysViolated(t *testing.T) *model.Instance {
	t.Helper()
	b := model.NewBuilder()
	v := b.AddVariable(dist.Uniform(2), "x")
	b.AddEvent([]int{v}, func([]int) bool { return true }, nil, "always")
	inst, err := b.Build()
	if err != nil {
		t.Fatalf("building always-violated instance: %v", err)
	}
	return inst
}

// TestBudgetExhaustionMatchesSolo packs a convergent instance next to an
// unsatisfiable one so that one instance finishes early while the other
// runs its budget out — both must still match their solo runs exactly.
func TestBudgetExhaustionMatchesSolo(t *testing.T) {
	s, err := apps.NewSinklessWithMargin(graph.Cycle(12), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	insts := []*model.Instance{alwaysViolated(t), s.Instance}
	seeds := []uint64{3, 4}

	t.Run("parallel", func(t *testing.T) {
		const maxRounds = 7
		solo := make([]*mt.Result, len(insts))
		for k, inst := range insts {
			solo[k], err = mt.Parallel(inst, prng.New(seeds[k]), maxRounds)
			if err != nil {
				t.Fatal(err)
			}
		}
		if solo[0].Satisfied {
			t.Fatal("always-violated instance reported satisfied")
		}
		results, err := batch.RunParallelMT(batch.Pack(insts), seeds, batch.Options{MaxRounds: maxRounds})
		if err != nil {
			t.Fatal(err)
		}
		for k, r := range results {
			if r.Satisfied != solo[k].Satisfied || r.Rounds != solo[k].Rounds || r.Resamplings != solo[k].Resamplings {
				t.Fatalf("instance %d: (sat=%v rounds=%d res=%d), solo (sat=%v rounds=%d res=%d)",
					k, r.Satisfied, r.Rounds, r.Resamplings,
					solo[k].Satisfied, solo[k].Rounds, solo[k].Resamplings)
			}
			sameValues(t, "assignment", solo[k].Assignment, r.Assignment)
		}
		if results[0].ViolatedEvents != 1 {
			t.Fatalf("exhausted instance reports %d violated events, want 1", results[0].ViolatedEvents)
		}
	})

	t.Run("sequential", func(t *testing.T) {
		const maxResamplings = 9
		solo := make([]*mt.Result, len(insts))
		for k, inst := range insts {
			solo[k], err = mt.Sequential(inst, prng.New(seeds[k]), maxResamplings)
			if err != nil {
				t.Fatal(err)
			}
		}
		if solo[0].Satisfied {
			t.Fatal("always-violated instance reported satisfied")
		}
		results, err := batch.RunSequentialMT(batch.Pack(insts), seeds, batch.Options{MaxResamplings: maxResamplings})
		if err != nil {
			t.Fatal(err)
		}
		for k, r := range results {
			if r.Satisfied != solo[k].Satisfied || r.Resamplings != solo[k].Resamplings {
				t.Fatalf("instance %d: (sat=%v res=%d), solo (sat=%v res=%d)",
					k, r.Satisfied, r.Resamplings, solo[k].Satisfied, solo[k].Resamplings)
			}
			sameValues(t, "assignment", solo[k].Assignment, r.Assignment)
		}
	})
}

func TestRunOneShotMatchesSolo(t *testing.T) {
	insts := testInstances(t)
	seeds := testSeeds(len(insts))

	type oneShot struct {
		a        *model.Assignment
		violated int
	}
	solo := make([]oneShot, len(insts))
	for k, inst := range insts {
		a, violated, err := mt.OneShot(inst, prng.New(seeds[k]))
		if err != nil {
			t.Fatalf("solo one-shot %d: %v", k, err)
		}
		solo[k] = oneShot{a, violated}
	}

	p := batch.Pack(insts)
	for _, w := range workerCounts() {
		pool := engine.New(w)
		results, err := batch.RunOneShot(p, seeds, batch.Options{Pool: pool})
		pool.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for k, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d instance %d: %v", w, k, r.Err)
			}
			if r.ViolatedEvents != solo[k].violated {
				t.Fatalf("workers=%d instance %d: %d violated, solo %d", w, k, r.ViolatedEvents, solo[k].violated)
			}
			if r.Satisfied != (solo[k].violated == 0) {
				t.Fatalf("workers=%d instance %d: satisfied=%v with %d violated", w, k, r.Satisfied, solo[k].violated)
			}
			sameValues(t, "one-shot assignment", solo[k].a, r.Assignment)
		}
	}
}

func TestRunFixSequentialMatchesSolo(t *testing.T) {
	insts := testInstances(t)

	solo := make([]*core.Result, len(insts))
	for k, inst := range insts {
		res, err := core.FixSequential(inst, nil, core.Options{})
		if err != nil {
			t.Fatalf("solo fixer %d: %v", k, err)
		}
		solo[k] = res
	}

	p := batch.Pack(insts)
	for _, w := range workerCounts() {
		pool := engine.New(w)
		results, err := batch.RunFixSequential(p, batch.Options{Pool: pool})
		pool.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for k, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d instance %d: %v", w, k, r.Err)
			}
			if !r.Satisfied || r.ViolatedEvents != 0 {
				t.Fatalf("workers=%d instance %d: satisfied=%v violated=%d", w, k, r.Satisfied, r.ViolatedEvents)
			}
			if r.VarsFixed != solo[k].Stats.VarsFixed {
				t.Fatalf("workers=%d instance %d: %d vars fixed, solo %d", w, k, r.VarsFixed, solo[k].Stats.VarsFixed)
			}
			sameValues(t, "fixer assignment", solo[k].Assignment, r.Assignment)
		}
	}
}

func TestRunFixSequentialRejectsTraceOptions(t *testing.T) {
	p := batch.Pack(testInstances(t))
	_, err := batch.RunFixSequential(p, batch.Options{Core: core.Options{Trace: &core.Trace{}}})
	if err == nil {
		t.Fatal("expected an error for Core.Trace in a packed run")
	}
}

func TestSeedCountMismatch(t *testing.T) {
	p := batch.Pack(testInstances(t))
	if _, err := batch.RunParallelMT(p, []uint64{1}, batch.Options{}); err == nil {
		t.Fatal("expected an error for a seed/instance count mismatch")
	}
}

func TestCancellationReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	insts := []*model.Instance{alwaysViolated(t)}
	results, err := batch.RunParallelMT(batch.Pack(insts), []uint64{1}, batch.Options{Ctx: ctx})
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if len(results) != 1 || results[0].Assignment == nil {
		t.Fatalf("cancellation should keep the partial per-instance state, got %+v", results)
	}
	if results[0].Satisfied {
		t.Fatal("cancelled instance must not report satisfied")
	}
}

func TestBatchMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	insts := testInstances(t)
	_, err := batch.RunParallelMT(batch.Pack(insts), testSeeds(len(insts)), batch.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("batch_runs_total").Value(); got != 1 {
		t.Fatalf("batch_runs_total = %d, want 1", got)
	}
	if got := reg.Counter("batch_instances_total").Value(); got != int64(len(insts)) {
		t.Fatalf("batch_instances_total = %d, want %d", got, len(insts))
	}
	if got := reg.Counter("batch_rounds_total").Value(); got < 1 {
		t.Fatalf("batch_rounds_total = %d, want >= 1", got)
	}
	if got := reg.Gauge("batch_instances_active").Value(); got != 0 {
		t.Fatalf("batch_instances_active = %v after the run, want 0", got)
	}
	if got := reg.Histogram("batch_size", obs.CountBuckets).Count(); got != 1 {
		t.Fatalf("batch_size count = %d, want 1", got)
	}
}

// TestOnRoundAggregates checks the deterministic per-round stream: Halted
// sums to the instance count and Steps sums to the total resamplings.
func TestOnRoundAggregates(t *testing.T) {
	insts := testInstances(t)
	seeds := testSeeds(len(insts))
	var halted, steps int
	results, err := batch.RunParallelMT(batch.Pack(insts), seeds, batch.Options{
		MaxRounds: 500,
		OnRound: func(rs engine.RoundStats) {
			halted += rs.Halted
			steps += rs.Steps
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if halted != len(insts) {
		t.Fatalf("OnRound reported %d halted instances, want %d", halted, len(insts))
	}
	total := 0
	for _, r := range results {
		total += r.Resamplings
	}
	if steps != total {
		t.Fatalf("OnRound reported %d steps, results sum to %d", steps, total)
	}
}

func TestPackAccessors(t *testing.T) {
	insts := testInstances(t)
	p := batch.Pack(insts)
	if p.Len() != len(insts) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(insts))
	}
	off := p.EventOffsets()
	if off[0] != 0 {
		t.Fatalf("EventOffsets[0] = %d, want 0", off[0])
	}
	events, vars := 0, 0
	for k, inst := range insts {
		if p.Instance(k) != inst {
			t.Fatalf("Instance(%d) is not the packed input", k)
		}
		if off[k+1]-off[k] != inst.NumEvents() {
			t.Fatalf("segment %d spans %d events, want %d", k, off[k+1]-off[k], inst.NumEvents())
		}
		events += inst.NumEvents()
		vars += inst.NumVars()
	}
	if p.TotalEvents() != events {
		t.Fatalf("TotalEvents = %d, want %d", p.TotalEvents(), events)
	}
	if p.TotalVars() != vars {
		t.Fatalf("TotalVars = %d, want %d", p.TotalVars(), vars)
	}
}
