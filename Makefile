# Development entry points for the LLL reproduction.

GO ?= go

.PHONY: build test test-race vet bench harness cover fuzz clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Race-detector pass over the sharded execution engine and its consumers
# (the LOCAL runtime, distributed Moser-Tardos, the distributed fixers).
test-race:
	$(GO) test -race ./internal/local/... ./internal/mt/... ./internal/core/... ./internal/engine/...

# One benchmark per paper figure/table plus solver micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every experiment table (F1, F2, T1..T11).
harness:
	$(GO) run ./cmd/benchharness

cover:
	$(GO) test -cover ./...

# Short fuzzing pass over the geometry and the numeric solver.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDecompose -fuzztime=10s ./internal/srep/
	$(GO) test -run=NONE -fuzz=FuzzSurfaceConvexity -fuzztime=10s ./internal/srep/
	$(GO) test -run=NONE -fuzz=FuzzFeasibleSoundness -fuzztime=10s ./internal/conjecture/

clean:
	$(GO) clean -testcache
