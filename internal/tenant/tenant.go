// Package tenant is the multi-tenant admission and scheduling layer of the
// serving stack: per-tenant weighted-fair queueing with priority classes
// (stride scheduling over per-tenant sub-queues), token-bucket rate limits
// and in-flight quotas enforced at admission, and an AIMD controller that
// auto-tunes the scheduler's concurrency from live latency signals.
//
// The package is deliberately dependency-free (stdlib only) so the config
// parser can be fuzzed in isolation and the queue can be property-tested
// deterministically: Queue is generic over the item type and never touches
// the clock, and Limiter takes an injectable now() so bucket refill is
// exact in tests.
//
// internal/service wires it in: one Queue[*Job] replaces the global FIFO
// channel, one Limiter guards Submit, and the AutoTuner closes the loop
// from the SLO engine's burn signal back to the queue's running limit.
package tenant

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// DefaultName is the tenant every unlabelled (or unknown, when the config
// allows them) submission is accounted to. It is always present in a
// parsed Config, with defaults from Config.Default when given.
const DefaultName = "default"

// Limits on Spec fields, enforced by Validate. MaxNameLen keeps tenant
// names usable as metric-name fragments; MaxWeight and MaxPriority bound
// the stride arithmetic and the class array.
const (
	MaxNameLen  = 32
	MaxWeight   = 1_000_000
	MaxPriority = 7
	MaxBurst    = 1_000_000
	maxRate     = 1e9
)

// Spec declares one tenant's scheduling weight and admission limits. The
// zero value (plus a name) is a valid unlimited tenant at weight 1.
type Spec struct {
	// Name identifies the tenant; submissions carry it in JobSpec.Tenant or
	// the X-Tenant header. 1–32 characters from [a-zA-Z0-9_-].
	Name string `json:"name"`
	// Weight is the tenant's share of scheduler dispatches relative to the
	// other tenants in its priority class (stride scheduling): under
	// saturation a tenant receives weight/Σweights of the dispatches.
	// Default 1; range [1, 1e6].
	Weight int `json:"weight,omitempty"`
	// Priority is the tenant's class, 0–7; a higher class is always
	// dispatched before any lower class with queued work. Weighted
	// fairness applies within a class. Default 0.
	Priority int `json:"priority,omitempty"`
	// Rate is the tenant's sustained admission rate in jobs/second,
	// enforced by a token bucket; 0 means unlimited. A submission that
	// finds the bucket empty is throttled (HTTP 429 with Retry-After).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token bucket depth — the instantaneous excursion above
	// Rate; 0 defaults to max(1, ceil(Rate)). Ignored when Rate is 0.
	Burst int `json:"burst,omitempty"`
	// MaxInFlight caps the tenant's jobs that are admitted but not yet
	// terminal (queued + running); 0 means unlimited. Exceeding it is a
	// quota rejection (HTTP 429).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MaxQueued caps the tenant's queued (not yet dispatched) jobs on top
	// of the queue's global capacity; 0 means unlimited. Exceeding it is a
	// quota rejection (HTTP 429).
	MaxQueued int `json:"max_queued,omitempty"`
}

// withDefaults fills the defaulted fields of a validated spec.
func (s Spec) withDefaults() Spec {
	if s.Weight == 0 {
		s.Weight = 1
	}
	if s.Rate > 0 && s.Burst == 0 {
		s.Burst = int(s.Rate)
		if float64(s.Burst) < s.Rate {
			s.Burst++
		}
		if s.Burst < 1 {
			s.Burst = 1
		}
	}
	return s
}

// Validate checks one spec's fields (the name per ValidName, the numeric
// fields against the package limits).
func (s Spec) Validate() error {
	if err := ValidName(s.Name); err != nil {
		return err
	}
	if s.Weight < 0 || s.Weight > MaxWeight {
		return fmt.Errorf("tenant %q: weight %d out of range [0, %d]", s.Name, s.Weight, MaxWeight)
	}
	if s.Priority < 0 || s.Priority > MaxPriority {
		return fmt.Errorf("tenant %q: priority %d out of range [0, %d]", s.Name, s.Priority, MaxPriority)
	}
	if s.Rate < 0 || s.Rate > maxRate {
		return fmt.Errorf("tenant %q: rate %g out of range [0, %g]", s.Name, s.Rate, maxRate)
	}
	if s.Rate != s.Rate { // NaN
		return fmt.Errorf("tenant %q: rate is NaN", s.Name)
	}
	if s.Burst < 0 || s.Burst > MaxBurst {
		return fmt.Errorf("tenant %q: burst %d out of range [0, %d]", s.Name, s.Burst, MaxBurst)
	}
	if s.Burst > 0 && s.Rate == 0 {
		return fmt.Errorf("tenant %q: burst %d without a rate", s.Name, s.Burst)
	}
	if s.MaxInFlight < 0 {
		return fmt.Errorf("tenant %q: max_in_flight %d must be non-negative", s.Name, s.MaxInFlight)
	}
	if s.MaxQueued < 0 {
		return fmt.Errorf("tenant %q: max_queued %d must be non-negative", s.Name, s.MaxQueued)
	}
	return nil
}

// ValidName checks a tenant name: 1–32 characters from [a-zA-Z0-9_-].
// Names double as metric-name fragments (dashes map to underscores), so
// the alphabet is deliberately small.
func ValidName(name string) error {
	if name == "" {
		return fmt.Errorf("tenant name is empty")
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("tenant name %q longer than %d characters", name, MaxNameLen)
	}
	for _, c := range name {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_') {
			return fmt.Errorf("tenant name %q contains invalid character %q", name, c)
		}
	}
	return nil
}

// MetricName returns the name with every dash mapped to an underscore, for
// use inside Prometheus metric names ("tenant_<name>_..."). Valid names
// need no further escaping.
func MetricName(name string) string {
	return strings.ReplaceAll(name, "-", "_")
}

// Config is the parsed multi-tenant policy: the declared tenants plus the
// policy for unlabelled or unknown submissions.
type Config struct {
	// Tenants are the declared tenants, sorted by name after parsing.
	Tenants []Spec `json:"tenants"`
	// Default, when non-nil, configures the reserved "default" tenant that
	// absorbs submissions without a tenant label — and, when AllowUnknown
	// is set, submissions naming an undeclared tenant. Its Name field is
	// ignored. When nil the default tenant exists with zero-value limits
	// (weight 1, unlimited).
	Default *Spec `json:"default,omitempty"`
	// AllowUnknown routes submissions naming an undeclared tenant into the
	// default tenant instead of rejecting them. Off by default: an unknown
	// tenant label is a client error.
	AllowUnknown bool `json:"allow_unknown,omitempty"`
}

// ParseConfig parses and validates the JSON tenant policy, normalizing it:
// specs are defaulted, sorted by name, and the reserved "default" tenant is
// materialized. The wire format:
//
//	{"tenants": [{"name": "gold", "weight": 3, "priority": 1,
//	              "rate": 50, "burst": 100, "max_in_flight": 8}],
//	 "default": {"weight": 1, "rate": 5},
//	 "allow_unknown": true}
func ParseConfig(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("tenant config: %w", err)
	}
	if err := c.normalize(); err != nil {
		return nil, err
	}
	return &c, nil
}

// normalize validates and canonicalizes the config in place.
func (c *Config) normalize() error {
	if len(c.Tenants) > 1024 {
		return fmt.Errorf("tenant config: %d tenants exceeds the cap of 1024", len(c.Tenants))
	}
	if c.Default != nil {
		d := *c.Default
		d.Name = DefaultName
		if err := d.Validate(); err != nil {
			return err
		}
		d = d.withDefaults()
		c.Default = &d
	}
	seen := make(map[string]bool, len(c.Tenants))
	for i, t := range c.Tenants {
		if err := t.Validate(); err != nil {
			return err
		}
		if t.Name == DefaultName {
			return fmt.Errorf("tenant name %q is reserved; configure it via the \"default\" field", DefaultName)
		}
		if seen[t.Name] {
			return fmt.Errorf("duplicate tenant name %q", t.Name)
		}
		seen[t.Name] = true
		c.Tenants[i] = t.withDefaults()
	}
	sort.Slice(c.Tenants, func(i, j int) bool { return c.Tenants[i].Name < c.Tenants[j].Name })
	return nil
}

// Specs returns every tenant the config declares, default tenant included,
// sorted by name — the set the queue, limiter and metric registrations are
// built from.
func (c *Config) Specs() []Spec {
	def := Spec{Name: DefaultName}.withDefaults()
	if c != nil && c.Default != nil {
		def = *c.Default
	}
	if c == nil {
		return []Spec{def}
	}
	out := make([]Spec, 0, len(c.Tenants)+1)
	out = append(out, def)
	out = append(out, c.Tenants...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Resolve maps a submission's tenant label to the tenant it is accounted
// to: "" maps to the default tenant, a declared name to itself, an unknown
// name to the default tenant when AllowUnknown is set and to an error
// otherwise. A nil config accepts everything into the default tenant.
func (c *Config) Resolve(name string) (string, error) {
	if name == "" || name == DefaultName {
		return DefaultName, nil
	}
	if c == nil {
		return DefaultName, nil
	}
	i := sort.Search(len(c.Tenants), func(i int) bool { return c.Tenants[i].Name >= name })
	if i < len(c.Tenants) && c.Tenants[i].Name == name {
		return name, nil
	}
	if c.AllowUnknown {
		return DefaultName, nil
	}
	return "", fmt.Errorf("unknown tenant %q", name)
}
