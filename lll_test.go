package lll_test

import (
	"math"
	"strings"
	"testing"

	lll "repro"
)

func TestQuickstartFlow(t *testing.T) {
	g := lll.NewCycle(32)
	s, err := lll.NewSinkless(g, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := lll.Validate(s.Instance); err != nil {
		t.Fatal(err)
	}
	res, err := lll.Solve(s.Instance, lll.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalViolatedEvents != 0 {
		t.Fatalf("%d violations", res.Stats.FinalViolatedEvents)
	}
	if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
		t.Fatalf("sinks: %v", sinks)
	}
}

func TestSolveDistributedDispatch(t *testing.T) {
	// Rank 2 dispatches to Corollary 1.2.
	s, err := lll.NewSinkless(lll.NewCycle(12), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := lll.SolveDistributed(s.Instance, lll.Options{}, lll.LocalOptions{IDSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ViolatedEvents != 0 {
		t.Fatal("rank-2 distributed solve failed")
	}
	// Rank 3 dispatches to Corollary 1.4.
	r := lll.NewRand(2)
	h, err := lll.NewRandomRegularRank3(12, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := lll.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := lll.SolveDistributed(hs.Instance, lll.Options{}, lll.LocalOptions{IDSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res3.ViolatedEvents != 0 {
		t.Fatal("rank-3 distributed solve failed")
	}
}

func TestCustomInstanceViaBuilder(t *testing.T) {
	// A bespoke instance through the public builder API: three events on a
	// triangle sharing one rank-3 variable plus private coins.
	b := lll.NewInstanceBuilder()
	shared := b.AddVariable(lll.Uniform(3), "shared")
	coins := make([]int, 3)
	bern, err := lll.Bernoulli(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coins {
		coins[i] = b.AddVariable(bern, "coin")
	}
	for i := 0; i < 3; i++ {
		i := i
		b.AddEvent([]int{shared, coins[i]}, func(v []int) bool {
			return v[0] == i && v[1] == 1
		}, nil, "E")
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if inst.Rank() != 3 {
		t.Fatalf("rank = %d", inst.Rank())
	}
	if err := lll.Validate(inst); err != nil {
		t.Fatal(err)
	}
	res, err := lll.Solve(inst, lll.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalViolatedEvents != 0 {
		t.Fatal("bespoke instance not solved")
	}
}

func TestValidateErrors(t *testing.T) {
	// Rank 4 rejected.
	b := lll.NewInstanceBuilder()
	x := b.AddVariable(lll.Uniform(2), "x")
	for i := 0; i < 4; i++ {
		b.AddEvent([]int{x}, func(v []int) bool { return v[0] == 1 }, nil, "E")
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := lll.Validate(inst); err == nil || !strings.Contains(err.Error(), "rank") {
		t.Fatalf("rank error = %v", err)
	}
	// Threshold instance fails the criterion.
	s, err := lll.NewSinkless(lll.NewCycle(6), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := lll.Validate(s.Instance); err == nil || !strings.Contains(err.Error(), "criterion") {
		t.Fatalf("criterion error = %v", err)
	}
}

func TestMoserTardosFacade(t *testing.T) {
	s, err := lll.NewSinkless(lll.NewCycle(16), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lll.MoserTardos(s.Instance, lll.NewRand(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatal("MT failed")
	}
	pres, err := lll.MoserTardosParallel(s.Instance, lll.NewRand(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pres.Satisfied {
		t.Fatal("parallel MT failed")
	}
}

func TestGeometryFacade(t *testing.T) {
	if got := lll.SurfaceF(0, 0); got != 4 {
		t.Fatalf("SurfaceF(0,0) = %v", got)
	}
	if !lll.IsRepresentable(0.25, 1.5, 0.1) {
		t.Fatal("Figure 2 triple rejected")
	}
	w, err := lll.DecomposeTriple(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := w.Triple()
	if math.Abs(a-1) > 1e-9 || math.Abs(b-1) > 1e-9 || math.Abs(c-1) > 1e-9 {
		t.Fatalf("witness realizes (%v,%v,%v)", a, b, c)
	}
}

func TestCheckExponentialCriterion(t *testing.T) {
	s, err := lll.NewSinklessWithMargin(lll.NewCycle(8), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	ok, margin := lll.CheckExponentialCriterion(s.Instance)
	if !ok || math.Abs(margin-0.7) > 1e-9 {
		t.Fatalf("ok=%v margin=%v", ok, margin)
	}
}

func TestSolveInOrderAdversarial(t *testing.T) {
	s, err := lll.NewSinkless(lll.NewCycle(10), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Instance.NumVars()
	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i
	}
	res, err := lll.SolveInOrder(s.Instance, order, lll.Options{Strategy: lll.StrategyAdversarial})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalViolatedEvents != 0 {
		t.Fatal("reverse adversarial order failed below threshold")
	}
}
