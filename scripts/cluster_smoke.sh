#!/usr/bin/env bash
# Cluster smoke: three llld nodes behind one lllrouter, driven end to end
# with real binaries. Asserts the PR-8 acceptance contract:
#
#   1. placement balance: 30 distinct jobs spread within 2x of the mean;
#   2. cache locality: an isomorphic resubmission lands on the same node
#      and is served from its cache without re-solving;
#   3. fault tolerance: with 50 chaos jobs in flight and one long
#      checkpointing job mid-run, SIGKILL the long job's node — zero jobs
#      lost, the long job migrates with its checkpoint, keeps one trace ID
#      across the move, and finishes with the same assignment hash as an
#      uninterrupted run of the same spec;
#
# and the PR-9 elasticity contract on top:
#
#   4. recovery: the killed node restarts and the failure detector
#      re-admits it — no router restart;
#   5. runtime join under load: a fourth node announces itself to the
#      router, every member converges on the new epoch, the previous
#      owners stream the joiner's ring slice (bounded key movement), and
#      resubmitting the warmed workload stays >= 90% cache-served;
#   6. planned leave: SIGTERM on the joiner runs the reverse warm handoff
#      before the drain — survivors hold its entries, no hit regression;
#   7. hot replication: a hot key's owner is SIGKILLed and the ring
#      successor serves the key warm, bit-identically, from the replica.
#
# Run from the repository root: scripts/cluster_smoke.sh
set -euo pipefail

BIN=${BIN:-/tmp/cluster-smoke}
LOG=${LOG:-/tmp/cluster-smoke/log}
mkdir -p "$BIN" "$LOG"

go build -o "$BIN/llld" ./cmd/llld
go build -o "$BIN/lllrouter" ./cmd/lllrouter
go build -o "$BIN/lllload" ./cmd/lllload

ROUTER=http://127.0.0.1:18090
NODES="a=http://127.0.0.1:18091,b=http://127.0.0.1:18092,c=http://127.0.0.1:18093"

declare -A PORT=([a]=18091 [b]=18092 [c]=18093 [d]=18094)
declare -A PID
cleanup() {
  # Guard every kill: an unset pid must not become `kill 0` (process group).
  for n in a b c d; do
    [ -n "${PID[$n]:-}" ] && kill "${PID[$n]}" 2>/dev/null || true
  done
  [ -n "${ROUTER_PID:-}" ] && kill "$ROUTER_PID" 2>/dev/null || true
  [ -n "${LOAD_PID:-}" ] && kill "$LOAD_PID" 2>/dev/null || true
  return 0
}
trap cleanup EXIT

# start_node <name> [extra flags...]: one llld member with the elasticity
# knobs tightened for a fast smoke (replication every 300ms).
start_node() {
  local n=$1; shift
  "$BIN/llld" -addr "127.0.0.1:${PORT[$n]}" -queue 64 -inflight 4 -cache-size 256 \
    -retries 3 -retry-backoff 20ms -retry-backoff-max 200ms \
    -cluster-self "$n" -cluster-hot-replicas 32 -cluster-replicate-interval 300ms \
    "$@" > "$LOG/llld_$n.log" 2>&1 &
  PID[$n]=$!
}

for n in a b c; do
  start_node "$n" -cluster-nodes "$NODES"
done
"$BIN/lllrouter" -addr 127.0.0.1:18090 -nodes "$NODES" -probe-interval 200ms \
  > "$LOG/lllrouter.log" 2>&1 &
ROUTER_PID=$!
# Wait until the router has probed every node up, not just until it is
# reachable: placement (and therefore the balance and locality phases)
# must see the full membership, or the home node of a key may be skipped
# as down and the test measures spill behavior instead.
for i in $(seq 1 120); do
  UP=$(curl -sf "$ROUTER/cluster" 2>/dev/null | grep -c '"state": *"up"' || true)
  [ "$UP" = 3 ] && break
  sleep 0.5
done
UP=$(curl -sf "$ROUTER/cluster" | grep -c '"state": *"up"')
test "$UP" = 3 || { echo "FAIL: only $UP of 3 nodes came up"; exit 1; }

# Helpers: submit a job through the router, wait for it to end, fetch views.
submit() { # $1=spec json -> job id
  curl -sf -X POST "$ROUTER/v1/jobs" -d "$1" | grep -o '"id": *"[^"]*"' | head -1 | cut -d'"' -f4
}
follow() { # $1=id -> full NDJSON stream (blocks to terminal)
  curl -sf "$ROUTER/v1/jobs/$1/events"
}
view() { curl -sf "$ROUTER/v1/jobs/$1"; }
field() { # $1=json $2=string field name
  echo "$1" | tr ',{' '\n\n' | grep -o "\"$2\": *\"[^\"]*\"" | head -1 | cut -d'"' -f4
}
metric() { # $1=node name $2=metric name -> value (0 when absent/unreachable)
  curl -sf "http://127.0.0.1:${PORT[$1]}/metrics" 2>/dev/null \
    | awk -v m="$2" '$1 == m {print $2; f=1} END {if (!f) print 0}'
}
node_entries() { # $1=node name -> its GET /cluster cache_entries
  curl -sf "http://127.0.0.1:${PORT[$1]}/cluster" 2>/dev/null \
    | grep -o '"cache_entries": *[0-9]*' | grep -o '[0-9]*$' || echo 0
}
state_of() { # $1=node name -> the router's detector verdict for it
  curl -sf "$ROUTER/cluster" | tr -d ' ' | grep -A6 "\"name\":\"$1\"" \
    | grep -o '"state":"[a-z]*"' | head -1 | cut -d'"' -f4
}
router_epoch() {
  curl -sf "$ROUTER/cluster" | grep -o '"epoch": *[0-9]*' | head -1 | grep -o '[0-9]*$'
}
cache_hits_cluster() { # sum of local + peer-fill cache hits over live nodes
  local sum=0 v
  for n in "$@"; do
    v=$(metric "$n" cache_hits_total); sum=$((sum + v))
    v=$(metric "$n" peer_fill_hits_total); sum=$((sum + v))
  done
  echo "$sum"
}

echo "== phase 1: placement balance over 30 distinct jobs =="
"$BIN/lllload" -addr "$ROUTER" -cluster -c 6 -jobs 30 -duration 120s \
  -spec '{"family":"sinkless","n":256,"degree":3,"margin":0.9,"algorithm":"mtpar"}' \
  | tee "$LOG/load_balance.out"
BAL=$(grep -o 'max/mean = [0-9.]*' "$LOG/load_balance.out" | grep -o '[0-9.]*$')
test -n "$BAL"
awk -v b="$BAL" 'BEGIN { exit !(b <= 2.0) }' \
  || { echo "FAIL: per-node balance $BAL exceeds 2x the mean"; exit 1; }

echo "== phase 2: cache locality across the cluster =="
CSPEC='{"family":"sinkless","n":4096,"algorithm":"mtpar","seed":4242,"cache":true}'
C1=$(submit "$CSPEC"); follow "$C1" > /dev/null
V1=$(view "$C1")
N1=$(field "$V1" node)
C2=$(submit "$CSPEC"); follow "$C2" > /dev/null
V2=$(view "$C2")
N2=$(field "$V2" node)
test -n "$N1" && test "$N1" = "$N2" \
  || { echo "FAIL: isomorphic resubmission moved nodes ($N1 -> $N2)"; exit 1; }
echo "$V2" | grep -q '"cache_hit": *true' \
  || { echo "FAIL: isomorphic resubmission on $N2 re-solved instead of hitting the cache"; exit 1; }
echo "resubmission stayed on node $N1 and hit its cache"

echo "== phase 3: uninterrupted baseline of the long checkpointing job =="
LSPEC='{"family":"sinkless","n":20000,"algorithm":"mtseq","seed":77,"checkpoint_every":200}'
L0=$(submit "$LSPEC")
follow "$L0" > "$LOG/long_baseline.ndjson"
V0=$(view "$L0")
HASH0=$(echo "$V0" | grep -o '"assignment_hash": *[0-9]*' | grep -o '[0-9]*$')
VICTIM=$(field "$V0" node)
test -n "$HASH0" && test -n "$VICTIM"
echo "baseline done on node $VICTIM, assignment hash $HASH0"

echo "== phase 4: 50 chaos jobs + SIGKILL node $VICTIM mid-run =="
L1=$(submit "$LSPEC")   # same placement key -> lands on $VICTIM
# Panic-only injection: panics are recoverable by retry (each attempt draws
# an independent pattern), so chaos jobs exercise the retry machinery and
# still complete; message drops would demonstrate designed give-up failures,
# which is a different smoke (see the chaos step).
"$BIN/lllload" -addr "$ROUTER" -cluster -c 8 -jobs 50 -duration 180s \
  -chaos 0.5 -chaos-panic 0.01 -chaos-drop 0 \
  -spec '{"family":"sinkless","n":256,"degree":3,"margin":0.9,"algorithm":"dist"}' \
  > "$LOG/load_chaos.out" 2>&1 &
LOAD_PID=$!
sleep 4   # long job mid-run, chaos load in flight
kill -9 "${PID[$VICTIM]}"
echo "killed llld node $VICTIM (pid ${PID[$VICTIM]})"

wait "$LOAD_PID" \
  || { echo "FAIL: lllload lost jobs across the node kill"; cat "$LOG/load_chaos.out"; exit 1; }
cat "$LOG/load_chaos.out"

follow "$L1" > "$LOG/long_migrated.ndjson" || true
V1=$(view "$L1")
tail -1 "$LOG/long_migrated.ndjson" | grep -q '"state":"done"' \
  || { echo "FAIL: migrated long job did not finish done"; tail -3 "$LOG/long_migrated.ndjson"; exit 1; }
grep -q '"kind":"migrated"' "$LOG/long_migrated.ndjson" \
  || { echo "FAIL: no migrated event on the long job's stream"; exit 1; }
grep -q '"kind":"checkpoint"' "$LOG/long_migrated.ndjson" \
  && { echo "FAIL: internal checkpoint event leaked to the client stream"; exit 1; }
TRACES=$(grep -o '"trace":"[0-9a-f]*"' "$LOG/long_migrated.ndjson" | sort -u | wc -l)
test "$TRACES" -eq 1 \
  || { echo "FAIL: $TRACES distinct trace IDs across the migration, want 1"; exit 1; }
HASH1=$(echo "$V1" | grep -o '"assignment_hash": *[0-9]*' | grep -o '[0-9]*$')
test "$HASH1" = "$HASH0" \
  || { echo "FAIL: migrated run hash $HASH1 != uninterrupted hash $HASH0"; exit 1; }
echo "long job migrated off $VICTIM, one trace, bit-identical hash $HASH1"

CLUSTER=$(curl -sf "$ROUTER/cluster")
echo "$CLUSTER" | grep -q '"lost": *0' \
  || { echo "FAIL: router reports lost jobs"; echo "$CLUSTER"; exit 1; }
echo "$CLUSTER" | grep -qo '"migrations": *0' \
  && { echo "FAIL: router reports zero migrations after a node kill"; exit 1; }

# Federation keeps serving for the survivors, with node labels injected.
curl -sf "$ROUTER/cluster/metrics" > "$LOG/federated.prom"
for n in a b c; do
  [ "$n" = "$VICTIM" ] && continue
  grep -q "node=\"$n\"" "$LOG/federated.prom" \
    || { echo "FAIL: federated metrics missing node=\"$n\" series"; exit 1; }
done

echo "== phase 5: restart $VICTIM — detector re-admits it, router untouched =="
start_node "$VICTIM" -cluster-nodes "$NODES"
for i in $(seq 1 120); do
  UP=$(curl -sf "$ROUTER/cluster" 2>/dev/null | grep -c '"state": *"up"' || true)
  [ "$UP" = 3 ] && break
  sleep 0.5
done
test "$UP" = 3 \
  || { echo "FAIL: restarted $VICTIM never re-admitted (states: $(curl -sf "$ROUTER/cluster" | grep -o '"state": *"[a-z]*"' | tr '\n' ' '))"; exit 1; }
echo "node $VICTIM recovered to up without restarting the router"

echo "== phase 6: warm the cache, then join node d under load =="
"$BIN/lllload" -addr "$ROUTER" -c 4 -jobs 24 -duration 120s -cache \
  -spec '{"family":"sinkless","n":256,"degree":3,"margin":0.9,"algorithm":"mtpar"}' \
  > "$LOG/load_warm.out"
TOTAL=0
for n in a b c; do
  E=$(node_entries "$n"); TOTAL=$((TOTAL + E))
done
test "$TOTAL" -gt 0 || { echo "FAIL: warm sweep cached nothing"; exit 1; }

"$BIN/lllload" -addr "$ROUTER" -c 4 -jobs 40 -duration 120s \
  -spec '{"family":"sinkless","n":256,"degree":3,"margin":0.9,"algorithm":"dist"}' \
  > "$LOG/load_join.out" 2>&1 &
LOAD_PID=$!

start_node d -cluster-url "http://127.0.0.1:${PORT[d]}" -cluster-join "$ROUTER"
for i in $(seq 1 120); do
  [ "$(state_of d 2>/dev/null || true)" = "up" ] && break
  sleep 0.5
done
test "$(state_of d)" = "up" || { echo "FAIL: joined node d never probed up"; exit 1; }
EPOCH=$(router_epoch)
test "$EPOCH" -ge 1 || { echo "FAIL: router epoch $EPOCH after a join, want >= 1"; exit 1; }

# The previous owners stream d's ring slice; wait for the transfer to
# settle (two stable reads of the receive counter).
MOVED=0
for i in $(seq 1 60); do
  M=$(metric d peer_handoff_entries_received_total)
  [ "$M" -gt 0 ] && [ "$M" = "$MOVED" ] && break
  MOVED=$M
  sleep 0.5
done
test "$MOVED" -gt 0 || { echo "FAIL: no warm-handoff entries reached the joiner"; exit 1; }
# Bounded key movement: a 4th node may take at most ~1/4 of the cached
# keys (x1.5 smoke slack). TOTAL double-counts write-through copies, so
# the bound is conservative.
BOUND=$(( (TOTAL * 15) / (4 * 10) + 1 ))
test "$MOVED" -le "$BOUND" \
  || { echo "FAIL: join moved $MOVED of $TOTAL entries, bound $BOUND (movement not bounded)"; exit 1; }
echo "join moved $MOVED of $TOTAL cached entries (bound $BOUND), epoch $EPOCH"

wait "$LOAD_PID" \
  || { echo "FAIL: lllload lost jobs across the elastic join"; cat "$LOG/load_join.out"; exit 1; }
LOAD_PID=

# Warm-hit rate: resubmitting the warmed workload must stay cache-served
# (>= 90%) — the moved slice now hits on d, the rest on its old owners.
HITS0=$(cache_hits_cluster a b c d)
"$BIN/lllload" -addr "$ROUTER" -c 4 -jobs 24 -duration 120s -cache \
  -spec '{"family":"sinkless","n":256,"degree":3,"margin":0.9,"algorithm":"mtpar"}' \
  > "$LOG/load_rewarm.out"
HITS1=$(cache_hits_cluster a b c d)
DELTA=$((HITS1 - HITS0))
test "$DELTA" -ge 22 \
  || { echo "FAIL: only $DELTA of 24 resubmissions were cache-served after the join"; exit 1; }
echo "post-join resweep: $DELTA of 24 cache-served"

echo "== phase 7: planned leave — SIGTERM d, reverse handoff before exit =="
D_ENTRIES=$(node_entries d)
RECV0=$(( $(metric a peer_handoff_entries_received_total) \
        + $(metric b peer_handoff_entries_received_total) \
        + $(metric c peer_handoff_entries_received_total) ))
kill -TERM "${PID[d]}"
wait "${PID[d]}" || { echo "FAIL: llld d exited non-zero on SIGTERM"; exit 1; }
PID[d]=
grep -q 'left cluster' "$LOG/llld_d.log" \
  || { echo "FAIL: d never ran the leave protocol"; tail -5 "$LOG/llld_d.log"; exit 1; }
RECV1=$(( $(metric a peer_handoff_entries_received_total) \
        + $(metric b peer_handoff_entries_received_total) \
        + $(metric c peer_handoff_entries_received_total) ))
test "$((RECV1 - RECV0))" -ge 1 \
  || { echo "FAIL: no reverse-handoff entries reached the survivors (d held $D_ENTRIES)"; exit 1; }
# The router learns the leave through anti-entropy against the nodes.
for i in $(seq 1 120); do
  curl -sf "$ROUTER/cluster" | grep -q '"name": *"d"' || break
  sleep 0.5
done
curl -sf "$ROUTER/cluster" | grep -q '"name": *"d"' \
  && { echo "FAIL: router still lists d after its leave"; exit 1; }
# No hit regression: the workload d was serving is warm on the survivors.
HITS2=$(cache_hits_cluster a b c)
"$BIN/lllload" -addr "$ROUTER" -c 4 -jobs 24 -duration 120s -cache \
  -spec '{"family":"sinkless","n":256,"degree":3,"margin":0.9,"algorithm":"mtpar"}' \
  > "$LOG/load_postleave.out"
HITS3=$(cache_hits_cluster a b c)
test "$((HITS3 - HITS2))" -ge 22 \
  || { echo "FAIL: only $((HITS3 - HITS2)) of 24 resubmissions cache-served after d left"; exit 1; }
echo "d left cleanly: $((RECV1 - RECV0)) entries handed back, resweep $((HITS3 - HITS2)) of 24 warm"

echo "== phase 8: SIGKILL a hot key's owner — successor serves it warm =="
HSPEC='{"family":"sinkless","n":4096,"algorithm":"mtpar","seed":31337,"cache":true}'
H1=$(submit "$HSPEC"); follow "$H1" > /dev/null
HV=$(view "$H1")
HOWNER=$(field "$HV" node)
HHASH=$(echo "$HV" | grep -o '"assignment_hash": *[0-9]*' | grep -o '[0-9]*$')
test -n "$HOWNER" && test -n "$HHASH"
for i in 1 2 3; do   # heat the entry: replication picks the top hit counts
  HID=$(submit "$HSPEC"); follow "$HID" > /dev/null
done
sleep 2   # > 2 replication cadences at 300ms, with margin
kill -9 "${PID[$HOWNER]}"
PID[$HOWNER]=
echo "killed hot-key owner $HOWNER"
for i in $(seq 1 120); do
  [ "$(state_of "$HOWNER")" = "down" ] && break
  sleep 0.5
done
test "$(state_of "$HOWNER")" = "down" || { echo "FAIL: $HOWNER never marked down"; exit 1; }
H2=$(submit "$HSPEC"); follow "$H2" > /dev/null
HV2=$(view "$H2")
HNODE2=$(field "$HV2" node)
test "$HNODE2" != "$HOWNER" || { echo "FAIL: job placed on the killed owner"; exit 1; }
echo "$HV2" | grep -q '"cache_hit": *true' \
  || { echo "FAIL: successor $HNODE2 re-solved the hot key (replica not warm)"; exit 1; }
HHASH2=$(echo "$HV2" | grep -o '"assignment_hash": *[0-9]*' | grep -o '[0-9]*$')
test "$HHASH2" = "$HHASH" \
  || { echo "FAIL: replica hash $HHASH2 != owner hash $HHASH"; exit 1; }
echo "hot key served warm on $HNODE2, bit-identical hash $HHASH2"

CLUSTER=$(curl -sf "$ROUTER/cluster")
echo "$CLUSTER" | grep -q '"lost": *0' \
  || { echo "FAIL: router reports lost jobs after the elasticity phases"; echo "$CLUSTER"; exit 1; }

echo "cluster smoke: all phases passed (victim $VICTIM, balance $BAL, join moved $MOVED/$TOTAL, hot owner $HOWNER)"
