package engine

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForEachCoversEveryIndexOnce checks the core contract: every index in
// [0, n) is visited exactly once, for a spread of sizes and worker counts.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			visits := make([]int32, n)
			p.ForEach(n, func(i int) {
				atomic.AddInt32(&visits[i], 1)
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
		p.Close()
	}
}

// TestForEachShardDisjointContiguous checks that shards partition the range.
func TestForEachShardDisjointContiguous(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 503
	covered := make([]int32, n)
	p.ForEachShard(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad shard [%d, %d)", lo, hi)
			return
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, v := range covered {
		if v != 1 {
			t.Fatalf("index %d covered %d times", i, v)
		}
	}
}

// TestIndexAddressedDeterminism checks the determinism discipline the LOCAL
// runtime relies on: index-addressed writes yield identical results for
// every worker count.
func TestIndexAddressedDeterminism(t *testing.T) {
	const n = 4096
	run := func(workers int) []uint64 {
		p := New(workers)
		defer p.Close()
		out := make([]uint64, n)
		p.ForEach(n, func(i int) {
			x := uint64(i) * 0x9e3779b97f4a7c15
			x ^= x >> 29
			out[i] = x
		})
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestNestedForEach checks that a ForEach issued from inside another
// ForEach on the same pool completes (no deadlock) and covers its range.
func TestNestedForEach(t *testing.T) {
	p := New(4)
	defer p.Close()
	const outer, inner = 16, 64
	var total atomic.Int64
	p.ForEach(outer, func(i int) {
		p.ForEach(inner, func(j int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != outer*inner {
		t.Fatalf("nested ForEach ran %d inner iterations, want %d", got, outer*inner)
	}
}

// TestSharedPoolReuse checks the process-wide pool is a singleton and
// usable repeatedly.
func TestSharedPoolReuse(t *testing.T) {
	a, b := Shared(), Shared()
	if a != b {
		t.Fatal("Shared returned distinct pools")
	}
	if a.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("shared pool has %d workers, want GOMAXPROCS=%d", a.Workers(), runtime.GOMAXPROCS(0))
	}
	for r := 0; r < 3; r++ {
		var count atomic.Int64
		a.ForEach(100, func(i int) { count.Add(1) })
		if count.Load() != 100 {
			t.Fatalf("round %d: %d iterations", r, count.Load())
		}
	}
}

// TestCloseFallsBackInline checks that a closed pool still executes work,
// inline on the caller.
func TestCloseFallsBackInline(t *testing.T) {
	p := New(4)
	p.Close()
	p.Close() // idempotent
	visited := make([]bool, 50)
	p.ForEach(len(visited), func(i int) { visited[i] = true })
	for i, v := range visited {
		if !v {
			t.Fatalf("index %d not visited after Close", i)
		}
	}
}

// TestNilPoolRunsInline checks the nil-pool convenience.
func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d", p.Workers())
	}
	sum := 0
	p.ForEach(10, func(i int) { sum += i })
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
	p.Close()
}

// TestForEachShardStatsInlinePaths checks the accounting on every inline
// execution path: nil pool, 1-worker pool, closed pool, n == 1 (all one
// shard, nothing stolen) and n <= 0 (zeroed stats).
func TestForEachShardStatsInlinePaths(t *testing.T) {
	closed := New(4)
	closed.Close()
	pools := map[string]*Pool{"nil": nil, "one-worker": New(1), "closed": closed}
	for name, p := range pools {
		var rs RunStats
		rs.Stolen = 99 // must be overwritten
		calls := 0
		p.ForEachShardStats(100, func(lo, hi int) { calls++ }, &rs)
		if calls != 1 || rs.Shards != 1 || rs.Stolen != 0 {
			t.Errorf("%s pool: calls=%d stats=%+v, want one untouched shard", name, calls, rs)
		}
		rs = RunStats{Shards: 7, Stolen: 7}
		p.ForEachShardStats(0, func(lo, hi int) { t.Errorf("%s pool: fn called for n=0", name) }, &rs)
		if rs != (RunStats{}) {
			t.Errorf("%s pool: n=0 stats not zeroed: %+v", name, rs)
		}
	}
	p := New(4)
	defer p.Close()
	var rs RunStats
	p.ForEachShardStats(1, func(lo, hi int) {}, &rs)
	if rs.Shards != 1 || rs.Stolen != 0 {
		t.Errorf("n=1 on 4 workers: %+v, want inline single shard", rs)
	}
}

// TestForEachShardStatsPooled checks the sharded path: the reported shard
// count matches the actual fn invocations, stolen never exceeds the total,
// and the range is still fully covered with stats tracking on.
func TestForEachShardStatsPooled(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 10_000
	for trial := 0; trial < 20; trial++ {
		covered := make([]int32, n)
		var calls atomic.Int64
		var rs RunStats
		p.ForEachShardStats(n, func(lo, hi int) {
			calls.Add(1)
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		}, &rs)
		if int(calls.Load()) != rs.Shards {
			t.Fatalf("trial %d: fn ran %d times but Shards=%d", trial, calls.Load(), rs.Shards)
		}
		if rs.Shards < p.Workers() {
			t.Fatalf("trial %d: only %d shards for a %d-worker pool on n=%d", trial, rs.Shards, p.Workers(), n)
		}
		if rs.Stolen < 0 || rs.Stolen > rs.Shards {
			t.Fatalf("trial %d: Stolen=%d out of range [0, %d]", trial, rs.Stolen, rs.Shards)
		}
		for i, v := range covered {
			if v != 1 {
				t.Fatalf("trial %d: index %d covered %d times", trial, i, v)
			}
		}
	}
}

// TestForEachShardStatsNilIsUntracked checks that the nil-rs fast path of
// ForEachShard still covers the range (the track flag must not change
// execution).
func TestForEachShardStatsNilIsUntracked(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 5000
	covered := make([]int32, n)
	p.ForEachShardStats(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	}, nil)
	for i, v := range covered {
		if v != 1 {
			t.Fatalf("index %d covered %d times", i, v)
		}
	}
}

// TestWorkersDefault checks New(0) picks GOMAXPROCS.
func TestWorkersDefault(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0).Workers() = %d, want %d", p.Workers(), runtime.GOMAXPROCS(0))
	}
}
