package tenant

import (
	"encoding/json"
	"testing"
)

// FuzzTenantSpec fuzzes the tenant config parser: arbitrary bytes must
// never panic, and every accepted config must satisfy the normalization
// invariants the queue and limiter are built on — validated specs,
// defaulted weights/bursts, sorted unique names, a resolvable default
// tenant, and a round-trip through JSON that parses to the same policy.
func FuzzTenantSpec(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"tenants":[]}`,
		`{"tenants":[{"name":"a"}]}`,
		`{"tenants":[{"name":"gold","weight":3,"priority":2,"rate":50,"burst":100,"max_in_flight":8,"max_queued":32},{"name":"silver","weight":1,"rate":2.5}],"default":{"weight":1,"rate":5},"allow_unknown":true}`,
		`{"tenants":[{"name":"x","weight":1000000,"priority":7}]}`,
		`{"tenants":[{"name":"a-b_C9","rate":0.0001}]}`,
		`{"default":{"max_in_flight":1}}`,
		`{"tenants":[{"name":"a","rate":1e8,"burst":1000000}]}`,
		`{"tenants":[{"name":"a","weight":-1}]}`,
		`{"tenants":[{"name":"default"}]}`,
		`{"tenants":[{"name":"a"},{"name":"a"}]}`,
		`{"allow_unknown":true}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseConfig(data)
		if err != nil {
			return // rejected input: the only contract is "no panic"
		}
		specs := c.Specs()
		if len(specs) == 0 {
			t.Fatal("accepted config produced no specs")
		}
		seen := make(map[string]bool, len(specs))
		hasDefault := false
		for i, sp := range specs {
			if err := sp.Validate(); err != nil {
				t.Fatalf("accepted config contains invalid spec %+v: %v", sp, err)
			}
			if sp.Weight < 1 {
				t.Fatalf("spec %q kept weight %d < 1 after normalization", sp.Name, sp.Weight)
			}
			if sp.Rate > 0 && sp.Burst < 1 {
				t.Fatalf("spec %q has rate %g with burst %d", sp.Name, sp.Rate, sp.Burst)
			}
			if seen[sp.Name] {
				t.Fatalf("duplicate spec %q survived normalization", sp.Name)
			}
			seen[sp.Name] = true
			if i > 0 && specs[i-1].Name > sp.Name {
				t.Fatalf("specs not sorted: %q after %q", sp.Name, specs[i-1].Name)
			}
			hasDefault = hasDefault || sp.Name == DefaultName
		}
		if !hasDefault {
			t.Fatal("specs lack the reserved default tenant")
		}
		// Every declared name resolves to itself; the empty label resolves
		// to the default tenant.
		for _, sp := range specs {
			got, err := c.Resolve(sp.Name)
			if err != nil || got != sp.Name {
				t.Fatalf("Resolve(%q) = (%q, %v), want identity", sp.Name, got, err)
			}
		}
		if got, err := c.Resolve(""); err != nil || got != DefaultName {
			t.Fatalf("Resolve(\"\") = (%q, %v), want default", got, err)
		}
		// Marshal → reparse must accept and agree (idempotent fixpoint).
		enc, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("accepted config does not marshal: %v", err)
		}
		c2, err := ParseConfig(enc)
		if err != nil {
			t.Fatalf("round-tripped config rejected: %v\njson: %s", err, enc)
		}
		enc2, err := json.Marshal(c2)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("config round-trip not a fixpoint:\n first: %s\nsecond: %s", enc, enc2)
		}
		// The accepted policy must actually construct the runtime objects.
		q := NewQueue[int](4, specs)
		if err := q.Push(DefaultName, 1); err != nil {
			// A default tenant with max_queued 0 is unlimited, so the only
			// legitimate failure is... none: capacity is 4 and the queue is
			// empty.
			t.Fatalf("fresh queue rejected a default-tenant push: %v", err)
		}
		NewLimiter(specs, nil).Admit(DefaultName)
	})
}
