#!/usr/bin/env bash
# Cluster smoke: three llld nodes behind one lllrouter, driven end to end
# with real binaries. Asserts the PR-8 acceptance contract:
#
#   1. placement balance: 30 distinct jobs spread within 2x of the mean;
#   2. cache locality: an isomorphic resubmission lands on the same node
#      and is served from its cache without re-solving;
#   3. fault tolerance: with 50 chaos jobs in flight and one long
#      checkpointing job mid-run, SIGKILL the long job's node — zero jobs
#      lost, the long job migrates with its checkpoint, keeps one trace ID
#      across the move, and finishes with the same assignment hash as an
#      uninterrupted run of the same spec.
#
# Run from the repository root: scripts/cluster_smoke.sh
set -euo pipefail

BIN=${BIN:-/tmp/cluster-smoke}
LOG=${LOG:-/tmp/cluster-smoke/log}
mkdir -p "$BIN" "$LOG"

go build -o "$BIN/llld" ./cmd/llld
go build -o "$BIN/lllrouter" ./cmd/lllrouter
go build -o "$BIN/lllload" ./cmd/lllload

ROUTER=http://127.0.0.1:18090
NODES="a=http://127.0.0.1:18091,b=http://127.0.0.1:18092,c=http://127.0.0.1:18093"

declare -A PORT=([a]=18091 [b]=18092 [c]=18093)
declare -A PID
cleanup() {
  # Guard every kill: an unset pid must not become `kill 0` (process group).
  for n in a b c; do
    [ -n "${PID[$n]:-}" ] && kill "${PID[$n]}" 2>/dev/null || true
  done
  [ -n "${ROUTER_PID:-}" ] && kill "$ROUTER_PID" 2>/dev/null || true
  [ -n "${LOAD_PID:-}" ] && kill "$LOAD_PID" 2>/dev/null || true
  return 0
}
trap cleanup EXIT

for n in a b c; do
  "$BIN/llld" -addr "127.0.0.1:${PORT[$n]}" -queue 64 -inflight 4 -cache-size 256 \
    -retries 3 -retry-backoff 20ms -retry-backoff-max 200ms \
    -cluster-self "$n" -cluster-nodes "$NODES" > "$LOG/llld_$n.log" 2>&1 &
  PID[$n]=$!
done
"$BIN/lllrouter" -addr 127.0.0.1:18090 -nodes "$NODES" -probe-interval 200ms \
  > "$LOG/lllrouter.log" 2>&1 &
ROUTER_PID=$!
# Wait until the router has probed every node up, not just until it is
# reachable: placement (and therefore the balance and locality phases)
# must see the full membership, or the home node of a key may be skipped
# as down and the test measures spill behavior instead.
for i in $(seq 1 120); do
  UP=$(curl -sf "$ROUTER/cluster" 2>/dev/null | grep -c '"state": *"up"' || true)
  [ "$UP" = 3 ] && break
  sleep 0.5
done
UP=$(curl -sf "$ROUTER/cluster" | grep -c '"state": *"up"')
test "$UP" = 3 || { echo "FAIL: only $UP of 3 nodes came up"; exit 1; }

# Helpers: submit a job through the router, wait for it to end, fetch views.
submit() { # $1=spec json -> job id
  curl -sf -X POST "$ROUTER/v1/jobs" -d "$1" | grep -o '"id": *"[^"]*"' | head -1 | cut -d'"' -f4
}
follow() { # $1=id -> full NDJSON stream (blocks to terminal)
  curl -sf "$ROUTER/v1/jobs/$1/events"
}
view() { curl -sf "$ROUTER/v1/jobs/$1"; }
field() { # $1=json $2=string field name
  echo "$1" | tr ',{' '\n\n' | grep -o "\"$2\": *\"[^\"]*\"" | head -1 | cut -d'"' -f4
}

echo "== phase 1: placement balance over 30 distinct jobs =="
"$BIN/lllload" -addr "$ROUTER" -cluster -c 6 -jobs 30 -duration 120s \
  -spec '{"family":"sinkless","n":256,"degree":3,"margin":0.9,"algorithm":"mtpar"}' \
  | tee "$LOG/load_balance.out"
BAL=$(grep -o 'max/mean = [0-9.]*' "$LOG/load_balance.out" | grep -o '[0-9.]*$')
test -n "$BAL"
awk -v b="$BAL" 'BEGIN { exit !(b <= 2.0) }' \
  || { echo "FAIL: per-node balance $BAL exceeds 2x the mean"; exit 1; }

echo "== phase 2: cache locality across the cluster =="
CSPEC='{"family":"sinkless","n":4096,"algorithm":"mtpar","seed":4242,"cache":true}'
C1=$(submit "$CSPEC"); follow "$C1" > /dev/null
V1=$(view "$C1")
N1=$(field "$V1" node)
C2=$(submit "$CSPEC"); follow "$C2" > /dev/null
V2=$(view "$C2")
N2=$(field "$V2" node)
test -n "$N1" && test "$N1" = "$N2" \
  || { echo "FAIL: isomorphic resubmission moved nodes ($N1 -> $N2)"; exit 1; }
echo "$V2" | grep -q '"cache_hit": *true' \
  || { echo "FAIL: isomorphic resubmission on $N2 re-solved instead of hitting the cache"; exit 1; }
echo "resubmission stayed on node $N1 and hit its cache"

echo "== phase 3: uninterrupted baseline of the long checkpointing job =="
LSPEC='{"family":"sinkless","n":20000,"algorithm":"mtseq","seed":77,"checkpoint_every":200}'
L0=$(submit "$LSPEC")
follow "$L0" > "$LOG/long_baseline.ndjson"
V0=$(view "$L0")
HASH0=$(echo "$V0" | grep -o '"assignment_hash": *[0-9]*' | grep -o '[0-9]*$')
VICTIM=$(field "$V0" node)
test -n "$HASH0" && test -n "$VICTIM"
echo "baseline done on node $VICTIM, assignment hash $HASH0"

echo "== phase 4: 50 chaos jobs + SIGKILL node $VICTIM mid-run =="
L1=$(submit "$LSPEC")   # same placement key -> lands on $VICTIM
# Panic-only injection: panics are recoverable by retry (each attempt draws
# an independent pattern), so chaos jobs exercise the retry machinery and
# still complete; message drops would demonstrate designed give-up failures,
# which is a different smoke (see the chaos step).
"$BIN/lllload" -addr "$ROUTER" -cluster -c 8 -jobs 50 -duration 180s \
  -chaos 0.5 -chaos-panic 0.01 -chaos-drop 0 \
  -spec '{"family":"sinkless","n":256,"degree":3,"margin":0.9,"algorithm":"dist"}' \
  > "$LOG/load_chaos.out" 2>&1 &
LOAD_PID=$!
sleep 4   # long job mid-run, chaos load in flight
kill -9 "${PID[$VICTIM]}"
echo "killed llld node $VICTIM (pid ${PID[$VICTIM]})"

wait "$LOAD_PID" \
  || { echo "FAIL: lllload lost jobs across the node kill"; cat "$LOG/load_chaos.out"; exit 1; }
cat "$LOG/load_chaos.out"

follow "$L1" > "$LOG/long_migrated.ndjson" || true
V1=$(view "$L1")
tail -1 "$LOG/long_migrated.ndjson" | grep -q '"state":"done"' \
  || { echo "FAIL: migrated long job did not finish done"; tail -3 "$LOG/long_migrated.ndjson"; exit 1; }
grep -q '"kind":"migrated"' "$LOG/long_migrated.ndjson" \
  || { echo "FAIL: no migrated event on the long job's stream"; exit 1; }
grep -q '"kind":"checkpoint"' "$LOG/long_migrated.ndjson" \
  && { echo "FAIL: internal checkpoint event leaked to the client stream"; exit 1; }
TRACES=$(grep -o '"trace":"[0-9a-f]*"' "$LOG/long_migrated.ndjson" | sort -u | wc -l)
test "$TRACES" -eq 1 \
  || { echo "FAIL: $TRACES distinct trace IDs across the migration, want 1"; exit 1; }
HASH1=$(echo "$V1" | grep -o '"assignment_hash": *[0-9]*' | grep -o '[0-9]*$')
test "$HASH1" = "$HASH0" \
  || { echo "FAIL: migrated run hash $HASH1 != uninterrupted hash $HASH0"; exit 1; }
echo "long job migrated off $VICTIM, one trace, bit-identical hash $HASH1"

CLUSTER=$(curl -sf "$ROUTER/cluster")
echo "$CLUSTER" | grep -q '"lost": *0' \
  || { echo "FAIL: router reports lost jobs"; echo "$CLUSTER"; exit 1; }
echo "$CLUSTER" | grep -qo '"migrations": *0' \
  && { echo "FAIL: router reports zero migrations after a node kill"; exit 1; }

# Federation keeps serving for the survivors, with node labels injected.
curl -sf "$ROUTER/cluster/metrics" > "$LOG/federated.prom"
for n in a b c; do
  [ "$n" = "$VICTIM" ] && continue
  grep -q "node=\"$n\"" "$LOG/federated.prom" \
    || { echo "FAIL: federated metrics missing node=\"$n\" series"; exit 1; }
done

echo "cluster smoke: all phases passed (victim $VICTIM, balance $BAL)"
