// Command lllsolve generates an LLL instance from a named family and solves
// it with a chosen solver, printing the instance parameters (p, d, r, the
// criterion margin) and the outcome.
//
// Usage:
//
//	lllsolve -family sinkless  -n 64 -d 2 -margin 0.9 -solver seq
//	lllsolve -family hyper     -n 30 -deg 3 -solver dist
//	lllsolve -family orient3   -n 24 -deg 2 -solver mt
//	lllsolve -family weaksplit -n 16 -colors 16 -solver mtpar
package main

import (
	"flag"
	"fmt"
	"os"

	lll "repro"
	"repro/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lllsolve:", err)
		os.Exit(1)
	}
}

type job struct {
	inst   *lll.Instance
	verify func(*lll.Assignment) string // returns "" when the domain property holds
}

func run() error {
	family := flag.String("family", "sinkless", "instance family: sinkless | hyper | orient3 | weaksplit")
	n := flag.Int("n", 64, "number of events (nodes)")
	d := flag.Int("d", 2, "graph degree (sinkless on regular graphs)")
	deg := flag.Int("deg", 3, "hypergraph degree (hyper, orient3)")
	margin := flag.Float64("margin", 0.9, "criterion margin p*2^d for sinkless (1 = exact threshold)")
	slack := flag.Float64("slack", 0.4, "relaxation slack for hyper")
	colors := flag.Int("colors", 16, "palette size for weaksplit")
	solver := flag.String("solver", "seq", "solver: seq | dist | mt | mtpar | oneshot")
	saveFile := flag.String("save", "", "write the generated instance as JSON to this file and exit")
	loadFile := flag.String("load", "", "load the instance from a JSON file instead of generating one")
	traceFile := flag.String("trace", "", "write a CSV trace of the sequential fixer's decisions to this file")
	strategy := flag.String("strategy", "greedy", "value strategy for seq/dist: greedy | first | adversarial")
	seed := flag.Uint64("seed", 1, "seed for generators, IDs and baselines")
	flag.Parse()

	var j *job
	if *loadFile != "" {
		f, err := os.Open(*loadFile)
		if err != nil {
			return err
		}
		defer f.Close()
		inst, err := lll.LoadInstance(f)
		if err != nil {
			return err
		}
		j = &job{inst: inst, verify: func(*lll.Assignment) string { return "" }}
		*family = "loaded:" + *loadFile
	} else {
		var err error
		j, err = buildInstance(*family, *n, *d, *deg, *margin, *slack, *colors, *seed)
		if err != nil {
			return err
		}
	}
	inst := j.inst
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			return err
		}
		if err := lll.SaveInstance(f, inst); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("instance written to %s\n", *saveFile)
		return nil
	}
	p, dd, r := inst.Params()
	ok, m := lll.CheckExponentialCriterion(inst)
	fmt.Printf("instance: family=%s events=%d vars=%d\n", *family, inst.NumEvents(), inst.NumVars())
	fmt.Printf("params:   p=%.6g d=%d r=%d  p*2^d=%.4g  (criterion p<2^-d: %v)\n", p, dd, r, m, ok)

	opts := lll.Options{}
	switch *strategy {
	case "greedy":
		opts.Strategy = lll.StrategyMinScore
	case "first":
		opts.Strategy = lll.StrategyFirst
	case "adversarial":
		opts.Strategy = lll.StrategyAdversarial
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	var (
		a         *lll.Assignment
		violated  int
		extraInfo string
	)
	switch *solver {
	case "seq":
		var trace *lll.Trace
		if *traceFile != "" {
			trace = &lll.Trace{}
			opts.Trace = trace
		}
		res, err := lll.Solve(inst, opts)
		if err != nil {
			return err
		}
		if trace != nil {
			f, err := os.Create(*traceFile)
			if err != nil {
				return err
			}
			if err := trace.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("trace:    %d steps written to %s\n", len(trace.Steps), *traceFile)
		}
		a = res.Assignment
		violated = res.Stats.FinalViolatedEvents
		extraInfo = fmt.Sprintf("peak edge sum=%.4g  peak event bound=%.4g (<= 2^d=%d)  peak certified bound=%.4g",
			res.Stats.PeakEdgeSum, res.Stats.PeakEventBound, 1<<uint(dd), res.Stats.PeakCertBound)
	case "dist":
		res, err := lll.SolveDistributed(inst, opts, lll.LocalOptions{IDSeed: *seed})
		if err != nil {
			return err
		}
		a = res.Assignment
		violated = res.ViolatedEvents
		extraInfo = fmt.Sprintf("rounds: colouring=%d fixing=%d total=%d  classes=%d  messages=%d",
			res.ColoringRounds, res.FixingRounds, res.TotalRounds, res.Classes, res.Messages)
	case "mt":
		res, err := lll.MoserTardos(inst, lll.NewRand(*seed), 0)
		if err != nil {
			return err
		}
		a = res.Assignment
		if !res.Satisfied {
			violated = -1
		}
		extraInfo = fmt.Sprintf("resamplings=%d satisfied=%v", res.Resamplings, res.Satisfied)
	case "mtpar":
		res, err := lll.MoserTardosParallel(inst, lll.NewRand(*seed), 0)
		if err != nil {
			return err
		}
		a = res.Assignment
		if !res.Satisfied {
			violated = -1
		}
		extraInfo = fmt.Sprintf("rounds=%d resamplings=%d satisfied=%v", res.Rounds, res.Resamplings, res.Satisfied)
	case "oneshot":
		a = sampleOnce(inst, *seed)
		v, err := inst.CountViolated(a)
		if err != nil {
			return err
		}
		violated = v
		extraInfo = "single random sample, no fixing"
	default:
		return fmt.Errorf("unknown solver %q", *solver)
	}

	fmt.Printf("solver:   %s  %s\n", *solver, extraInfo)
	fmt.Printf("result:   violated events=%d\n", violated)
	if msg := j.verify(a); msg != "" {
		fmt.Printf("domain:   %s\n", msg)
	} else {
		fmt.Printf("domain:   property verified\n")
	}
	if violated != 0 {
		os.Exit(2)
	}
	return nil
}

func sampleOnce(inst *lll.Instance, seed uint64) *lll.Assignment {
	r := lll.NewRand(seed)
	a := model.NewAssignment(inst)
	for vid := 0; vid < inst.NumVars(); vid++ {
		a.Fix(vid, inst.Var(vid).Dist.Sample(r))
	}
	return a
}

func buildInstance(family string, n, d, deg int, margin, slack float64, colors int, seed uint64) (*job, error) {
	r := lll.NewRand(seed)
	switch family {
	case "sinkless":
		var g *lll.Graph
		if d == 2 {
			g = lll.NewCycle(n)
		} else {
			var err error
			g, err = lll.NewRandomRegular(n, d, r)
			if err != nil {
				return nil, err
			}
		}
		s, err := lll.NewSinklessWithMargin(g, margin)
		if err != nil {
			return nil, err
		}
		return &job{inst: s.Instance, verify: func(a *lll.Assignment) string {
			if sinks := s.Sinks(a); len(sinks) > 0 {
				return fmt.Sprintf("sinks at %v", sinks)
			}
			return ""
		}}, nil
	case "hyper":
		h, err := lll.NewRandomRegularRank3(n, deg, r)
		if err != nil {
			return nil, err
		}
		s, err := lll.NewHyperSinkless(h, slack)
		if err != nil {
			return nil, err
		}
		return &job{inst: s.Instance, verify: func(a *lll.Assignment) string {
			if sinks := s.Sinks(a); len(sinks) > 0 {
				return fmt.Sprintf("sinks at %v", sinks)
			}
			return ""
		}}, nil
	case "orient3":
		h, err := lll.NewRandomRegularRank3(n, deg, r)
		if err != nil {
			return nil, err
		}
		t, err := lll.NewThreeOrientations(h)
		if err != nil {
			return nil, err
		}
		return &job{inst: t.Instance, verify: func(a *lll.Assignment) string {
			if v := t.Violations(a); len(v) > 0 {
				return fmt.Sprintf("nodes sink in >=2 orientations: %v", v)
			}
			return ""
		}}, nil
	case "weaksplit":
		// n V-nodes of degree 3 over n U-nodes of degree 3.
		adj, err := lll.NewRandomBiregular(n, 3, n, 3, r)
		if err != nil {
			return nil, err
		}
		w, err := lll.NewWeakSplitting(adj, n, colors)
		if err != nil {
			return nil, err
		}
		return &job{inst: w.Instance, verify: func(a *lll.Assignment) string {
			if mono := w.Monochromatic(a); len(mono) > 0 {
				return fmt.Sprintf("monochromatic V-nodes: %v", mono)
			}
			return ""
		}}, nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
