package model

import "repro/internal/dist"

// Conjunction describes a bad event of the frequently-occurring product
// form: the event occurs iff every scope variable takes a value from a
// per-variable "bad set". Sinkless orientation ("every incident edge points
// at me"), monochromatic-neighborhood events and many other LLL workloads
// have this shape.
//
// Its conditional probability factorizes over the scope,
//
//	Pr[E | fixed] = ∏_i ( fixed_i ? 1{vals_i ∈ S_i} : Pr[X_i ∈ S_i] ),
//
// which gives the probability engine a closed form that avoids enumeration.
type Conjunction struct {
	scope   []int
	badSets [][]bool  // badSets[i][v]: value v of scope var i is in S_i
	setProb []float64 // Pr[X_i ∈ S_i]
}

// NewConjunction builds a Conjunction over the given scope. badSets[i] lists
// the value indices of S_i for scope variable i; dists[i] is the
// distribution of scope variable i (used to precompute set probabilities).
func NewConjunction(scope []int, badSets [][]int, dists []*dist.Distribution) *Conjunction {
	c := &Conjunction{
		scope:   append([]int(nil), scope...),
		badSets: make([][]bool, len(scope)),
		setProb: make([]float64, len(scope)),
	}
	for i := range scope {
		mask := make([]bool, dists[i].Size())
		p := 0.0
		for _, v := range badSets[i] {
			if !mask[v] {
				mask[v] = true
				p += dists[i].Prob(v)
			}
		}
		c.badSets[i] = mask
		c.setProb[i] = p
	}
	return c
}

// Scope returns the scope the conjunction was built over.
func (c *Conjunction) Scope() []int {
	return append([]int(nil), c.scope...)
}

// Bad is the defining predicate, suitable for Event.Bad.
func (c *Conjunction) Bad(vals []int) bool {
	for i, v := range vals {
		if !c.badSets[i][v] {
			return false
		}
	}
	return true
}

// CondProb is the closed-form conditional probability, suitable for
// Event.CondProb.
func (c *Conjunction) CondProb(vals []int, fixed []bool) float64 {
	p := 1.0
	for i := range c.scope {
		if fixed[i] {
			if !c.badSets[i][vals[i]] {
				return 0
			}
			continue
		}
		p *= c.setProb[i]
	}
	return p
}

// AddConjunctionEvent registers a conjunction-shaped event on b and returns
// its identifier. dists must be the distributions of the scope variables in
// scope order.
func AddConjunctionEvent(b *Builder, scope []int, badSets [][]int, dists []*dist.Distribution, name string) int {
	c := NewConjunction(scope, badSets, dists)
	id := b.AddEvent(scope, c.Bad, c.CondProb, name)
	spec := ConjunctionSpec{BadSets: make([][]int, len(badSets))}
	for i, set := range badSets {
		spec.BadSets[i] = append([]int(nil), set...)
	}
	b.events[id].Spec = spec
	return id
}
