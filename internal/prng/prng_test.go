package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if got, want := a.Next(), b.Next(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the public-domain C implementation.
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("value %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64MatchesSplitMix(t *testing.T) {
	// Mix64(x) must equal the first output of a SplitMix64 seeded with x.
	f := func(x uint64) bool {
		return Mix64(x) == NewSplitMix64(x).Next()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("stream diverged at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams for different seeds collide %d/64 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical prefixes")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniform = %v, want ~0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(17)
	const buckets, n = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", b, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	// With 3 elements there are 6 arrangements; all should appear.
	r := New(29)
	seen := make(map[[3]int]bool)
	for i := 0; i < 1000; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		seen[a] = true
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d/6 arrangements", len(seen))
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(37)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
