// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document. It exists for `make bench-json`, which
// pins the PR's benchmark evidence (rounds/sec, allocs/round, ns/op for the
// n = 100k engine and LOCAL-runtime benchmarks at -cpu 1,2,4) into
// BENCH_pr2.json, but it parses any benchmark stream: each result line is
// `BenchmarkName-CPUS  iterations  value unit  value unit ...`, and every
// value/unit pair (ns/op, B/op, allocs/op and custom b.ReportMetric units
// such as rounds/sec) becomes a metrics entry.
//
// Usage:
//
//	go test -run=NONE -bench ... -benchmem -cpu 1,2,4 ./... | benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -CPUS suffix stripped
	// (e.g. "BenchmarkEngineRounds/pool").
	Name string `json:"name"`
	// CPUs is the GOMAXPROCS the run used (the -N suffix; 1 if absent).
	CPUs int `json:"cpus"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every value/unit pair on the line
	// (ns/op, B/op, allocs/op, rounds/sec, allocs/round, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the emitted JSON document.
type Doc struct {
	// Goos/Goarch/CPU/Pkg echo the benchmark stream's header lines.
	Goos   string   `json:"goos,omitempty"`
	Goarch string   `json:"goarch,omitempty"`
	CPU    string   `json:"cpu,omitempty"`
	Pkgs   []string `json:"pkgs,omitempty"`
	// Benchmarks holds one entry per result line, in stream order.
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "", "write JSON here (empty = stdout)")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

func parse(sc *bufio.Scanner) (*Doc, error) {
	doc := &Doc{}
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkgs = append(doc.Pkgs, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			doc.Benchmarks = append(doc.Benchmarks, res)
		}
	}
	return doc, sc.Err()
}

// parseResult parses one `BenchmarkName-N  iters  value unit ...` line.
func parseResult(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("short benchmark line: %q", line)
	}
	name, cpus := splitCPUs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	res := Result{Name: name, CPUs: cpus, Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, fmt.Errorf("unpaired value/unit fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("bad metric value %q in %q: %w", rest[i], line, err)
		}
		res.Metrics[rest[i+1]] = v
	}
	return res, nil
}

// splitCPUs strips the trailing -N GOMAXPROCS suffix a benchmark name
// carries when GOMAXPROCS > 1. Sub-benchmark names may themselves contain
// dashes, so only a trailing all-digit segment counts.
func splitCPUs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}
