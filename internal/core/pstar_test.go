package core

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/model"
)

func TestPStarInitialState(t *testing.T) {
	g := graph.Cycle(5)
	ps := NewPStar(g)
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		if ps.Value(id, e.U) != 1 || ps.Value(id, e.V) != 1 {
			t.Fatalf("edge %d not initialized to 1", id)
		}
	}
	if ps.MaxEdgeSum() != 2 {
		t.Fatalf("initial MaxEdgeSum = %v", ps.MaxEdgeSum())
	}
	for v := 0; v < g.N(); v++ {
		if ps.EventBound(v) != 1 {
			t.Fatalf("initial EventBound(%d) = %v", v, ps.EventBound(v))
		}
	}
}

func TestPStarSetAndBounds(t *testing.T) {
	g := graph.Cycle(4)
	ps := NewPStar(g)
	// Edge 0 = {0,1}. Push node 0's side to 2, node 1's side to 0.
	ps.Set(0, 0, 2)
	ps.Set(0, 1, 0)
	if got := ps.Value(0, 0); got != 2 {
		t.Fatalf("Value = %v", got)
	}
	// EventBound(0) multiplies over both incident edges: 2 * 1.
	if got := ps.EventBound(0); got != 2 {
		t.Fatalf("EventBound(0) = %v", got)
	}
	if got := ps.EventBound(1); got != 0 {
		t.Fatalf("EventBound(1) = %v", got)
	}
	if got := ps.MaxEventBound(); got != 2 {
		t.Fatalf("MaxEventBound = %v", got)
	}
}

func TestPStarPanicsOnNonEndpoint(t *testing.T) {
	g := graph.Cycle(4)
	ps := NewPStar(g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ps.Value(0, 3) // edge 0 = {0,1}; node 3 is not an endpoint
}

func TestPStarAuditDetectsViolations(t *testing.T) {
	// Two events sharing a fair coin; event v: coin == v's parity.
	b := model.NewBuilder()
	x := b.AddVariable(dist.Uniform(2), "x")
	b.AddEvent([]int{x}, func(v []int) bool { return v[0] == 1 }, nil, "E0")
	b.AddEvent([]int{x}, func(v []int) bool { return v[0] == 1 }, nil, "E1")
	inst := b.MustBuild()
	g := inst.DependencyGraph()
	ps := NewPStar(g)
	a := model.NewAssignment(inst)
	base := []float64{0.5, 0.5}

	if err := ps.Audit(inst, a, base, 1e-9); err != nil {
		t.Fatalf("clean state should pass audit: %v", err)
	}

	// Violate the edge-sum constraint.
	ps.Set(0, 0, 1.5)
	ps.Set(0, 1, 1.5)
	if err := ps.Audit(inst, a, base, 1e-9); err == nil {
		t.Fatal("edge-sum violation not detected")
	}

	// Violate the probability bound: fix the coin to 1 (both events now
	// certain) while claiming φ values that bound Pr by 0.5.
	ps.Set(0, 0, 1)
	ps.Set(0, 1, 1)
	a.Fix(x, 1)
	if err := ps.Audit(inst, a, base, 1e-9); err == nil {
		t.Fatal("probability-bound violation not detected")
	}
}

func TestPStarAuditRejectsOutOfRange(t *testing.T) {
	b := model.NewBuilder()
	x := b.AddVariable(dist.Uniform(2), "x")
	b.AddEvent([]int{x}, func(v []int) bool { return v[0] == 1 }, nil, "E0")
	b.AddEvent([]int{x}, func(v []int) bool { return v[0] == 0 }, nil, "E1")
	inst := b.MustBuild()
	ps := NewPStar(inst.DependencyGraph())
	ps.Set(0, 0, 2.5)
	ps.Set(0, 1, -0.5)
	if err := ps.Audit(inst, model.NewAssignment(inst), []float64{0.5, 0.5}, 1e-9); err == nil {
		t.Fatal("out-of-range φ not detected")
	}
	ps.Set(0, 0, math.NaN())
	if err := ps.Audit(inst, model.NewAssignment(inst), []float64{0.5, 0.5}, 1e-9); err == nil {
		t.Fatal("NaN φ not detected")
	}
}
