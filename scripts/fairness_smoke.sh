#!/usr/bin/env bash
# Fairness smoke: one llld with a three-tenant policy, driven by the
# lllload -tenants scenario with real binaries. Asserts the multi-tenant
# acceptance contract:
#
#   1. weighted fairness: two tenants with continuous backlog (adversarial
#      closed loops) and a 3:1 weight ratio achieve completion shares that
#      clearly reflect the weights;
#   2. quota isolation: an abusive tenant throttled by its own token
#      bucket never causes a single rate-limit or quota rejection for the
#      well-behaved tenants — zero cross-tenant leakage;
#   3. accounting surfaces: per-tenant counters are live on /metrics
#      (tenant_<name>_*) and GET /v1/tenants, and the abuser's throttles
#      are attributed to the abuser alone on both;
#   4. the AIMD auto-tuner publishes its live in-flight limit and the
#      daemon drains cleanly with tenancy + autotune configured.
#
# Run from the repository root: scripts/fairness_smoke.sh
set -euo pipefail

BIN=${BIN:-/tmp/fairness-smoke}
LOG=${LOG:-/tmp/fairness-smoke/log}
mkdir -p "$BIN" "$LOG"

go build -o "$BIN/llld" ./cmd/llld
go build -o "$BIN/lllload" ./cmd/lllload

ADDR=127.0.0.1:18095
BASE=http://$ADDR

cat > "$BIN/tenants.json" <<'EOF'
{"tenants":[
  {"name":"gold","weight":3},
  {"name":"silver","weight":1},
  {"name":"abuser","weight":1,"rate":1,"burst":2,"max_queued":4}
]}
EOF

"$BIN/llld" -addr "$ADDR" -queue 256 -inflight 2 \
  -tenants "@$BIN/tenants.json" \
  -autotune -autotune-min 1 -autotune-max 4 -autotune-interval 500ms \
  > "$LOG/llld.log" 2>&1 &
LLLD=$!
trap 'kill "$LLLD" 2>/dev/null || true' EXIT

for i in $(seq 1 60); do
  curl -sf "$BASE/healthz" > /dev/null 2>&1 && break
  sleep 0.5
done
curl -sf "$BASE/healthz" > /dev/null

# Saturating backlog from both weighted tenants (the adversarial closed
# loop resubmits the moment a job finishes, so each keeps its sub-queue
# non-empty) plus an abuser that outruns its own 1 req/s token bucket.
# The job must be expensive relative to the client's HTTP round trips
# (n=512 dist runs ~400ms) — a sub-queue only backs up, and weighted
# fairness only binds, when the server is the bottleneck.
"$BIN/lllload" -addr "$BASE" -duration 25s \
  -spec '{"family":"sinkless","n":512,"degree":3,"margin":0.9,"algorithm":"dist"}' \
  -tenants 'gold=adversarial:8,silver=adversarial:8,abuser=adversarial:4' \
  | tee "$LOG/fairness.out"

# field <tenant> <key>: pull key=value off the tenant's report line.
field() {
  awk -v t="$1" -v k="$2" \
    '$1==t {for(i=1;i<=NF;i++) if(index($i,k"=")==1){sub(k"=","",$i); sub(/%$/,"",$i); print $i}}' \
    "$LOG/fairness.out"
}

GOLD=$(field gold share); SILVER=$(field silver share)
echo "achieved shares: gold=$GOLD% silver=$SILVER%"
test -n "$GOLD" && test -n "$SILVER"
# Weight 3 vs 1 is ~75/25 under saturation; demand clear dominance with a
# generous CI band (the property tests pin the exact +/-10% ratios).
awk -v g="$GOLD" -v s="$SILVER" 'BEGIN { exit !(g > 1.8 * s) }' \
  || { echo "gold/silver completion shares do not reflect the 3:1 weights"; exit 1; }

# Quota isolation: the abuser hit its bucket, the others never did.
test "$(field abuser throttled)" -gt 0 \
  || { echo "abuser was never throttled (token bucket inert)"; exit 1; }
for t in gold silver; do
  test "$(field $t throttled)" -eq 0 \
    || { echo "tenant $t was throttled by the abuser's limits (leakage)"; exit 1; }
  test "$(field $t quota)" -eq 0 \
    || { echo "tenant $t hit a quota it does not have (leakage)"; exit 1; }
done

# Per-tenant accounting on both surfaces, attributed to the right tenant.
curl -sf "$BASE/v1/tenants" > "$LOG/tenants.json"
grep -q '"name": "gold"' "$LOG/tenants.json"
grep -q '"name": "abuser"' "$LOG/tenants.json"
curl -sf "$BASE/metrics" > "$LOG/metrics.txt"
awk '$1 == "tenant_gold_done_total" && $2 > 0 {found=1} END {exit !found}' "$LOG/metrics.txt"
awk '$1 == "tenant_abuser_throttled_total" && $2 > 0 {found=1} END {exit !found}' "$LOG/metrics.txt"
awk '$1 == "tenant_gold_throttled_total" && $2 == 0 {found=1} END {exit !found}' "$LOG/metrics.txt"
awk '$1 == "tenant_silver_throttled_total" && $2 == 0 {found=1} END {exit !found}' "$LOG/metrics.txt"
grep -q '^service_inflight_limit ' "$LOG/metrics.txt"

# Clean SIGTERM drain with tenancy + autotune still configured.
kill -TERM "$LLLD"
wait "$LLLD"
grep -q 'all jobs drained' "$LOG/llld.log"
trap - EXIT
echo "fairness smoke passed: 3:1 weights visible (gold=$GOLD% silver=$SILVER%), zero cross-tenant leakage"
