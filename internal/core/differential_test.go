package core

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/apps"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/model"
	"repro/internal/prng"
)

// smallInstances builds every differential target with at most 12 variables:
// rank-2 sinkless instances (cycles and a random 3-regular graph) and rank-3
// hyper-sinkless / random-conjunction instances. Small enough that the full
// product space (≤ 4^12 tuples here, far less in practice) is enumerable.
func smallInstances(t *testing.T) map[string]*model.Instance {
	t.Helper()
	out := map[string]*model.Instance{}

	for _, n := range []int{6, 9, 12} {
		s, err := apps.NewSinklessWithMargin(graph.Cycle(n), 0.9)
		if err != nil {
			t.Fatal(err)
		}
		out["cycle-"+strconv.Itoa(n)] = s.Instance
	}
	g, err := graph.RandomRegular(8, 3, prng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewSinklessWithMargin(g, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	out["regular-8"] = s.Instance

	for _, n := range []int{6, 9, 12} {
		h, err := hypergraph.RandomRegularRank3(n, 2, prng.New(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		hs, err := apps.NewHyperSinkless(h, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		out["hyper-"+strconv.Itoa(n)] = hs.Instance
	}
	h, err := hypergraph.RandomRegularRank3(6, 2, prng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := apps.NewRandomConjunction(h, 3, 0.5, prng.New(100))
	if err != nil {
		t.Fatal(err)
	}
	out["conjunction-6"] = rc.Instance
	return out
}

// enumeration is the exhaustive ground truth for a small instance: the
// number of satisfying value tuples, their total probability mass, and the
// exact unconditioned probability of every event under the product measure.
type enumeration struct {
	total      int
	satisfying int
	satMass    float64
	eventProb  []float64
}

// enumerate walks the full product space of the instance with an odometer
// and evaluates every event on every tuple. It is deliberately independent
// of the fixing machinery: only the raw bad-event predicates and the raw
// distribution probabilities are consulted.
func enumerate(t *testing.T, inst *model.Instance) enumeration {
	t.Helper()
	n := inst.NumVars()
	if n > 12 {
		t.Fatalf("instance has %d > 12 variables; not enumerable", n)
	}
	sizes := make([]int, n)
	space := 1
	for i := range sizes {
		sizes[i] = inst.Var(i).Dist.Size()
		space *= sizes[i]
	}
	if space > 1<<22 {
		t.Fatalf("product space %d too large to enumerate", space)
	}

	e := enumeration{eventProb: make([]float64, inst.NumEvents())}
	vals := make([]int, n)
	for {
		a := model.NewAssignment(inst)
		mass := 1.0
		for i, v := range vals {
			a.Fix(i, v)
			mass *= inst.Var(i).Dist.Prob(v)
		}
		bad := false
		for id := 0; id < inst.NumEvents(); id++ {
			violated, err := inst.Violated(id, a)
			if err != nil {
				t.Fatal(err)
			}
			if violated {
				bad = true
				e.eventProb[id] += mass
			}
		}
		e.total++
		if !bad {
			e.satisfying++
			e.satMass += mass
		}

		i := 0
		for ; i < n; i++ {
			vals[i]++
			if vals[i] < sizes[i] {
				break
			}
			vals[i] = 0
		}
		if i == n {
			return e
		}
	}
}

// TestDifferentialFixerVsEnumeration cross-checks the derandomized
// sequential fixer against brute-force enumeration on every ≤ 12-variable
// instance: enumeration proves satisfying assignments exist (the LLL
// existence statement), the fixer must find one deterministically under all
// three value-selection strategies, and the found tuple must be one the
// enumeration confirms.
func TestDifferentialFixerVsEnumeration(t *testing.T) {
	for name, inst := range smallInstances(t) {
		inst := inst
		t.Run(name, func(t *testing.T) {
			e := enumerate(t, inst)
			if e.satisfying == 0 {
				t.Fatalf("enumeration found no satisfying assignment among %d tuples — instance above threshold?", e.total)
			}
			for _, strat := range []Strategy{StrategyMinScore, StrategyFirst, StrategyAdversarial} {
				res, err := FixSequential(inst, nil, Options{Strategy: strat, Audit: true})
				if err != nil {
					t.Fatalf("strategy %v: fixer failed although %d/%d tuples satisfy: %v",
						strat, e.satisfying, e.total, err)
				}
				if !res.Assignment.Complete() {
					t.Fatalf("strategy %v: incomplete assignment", strat)
				}
				violated, err := inst.CountViolated(res.Assignment)
				if err != nil {
					t.Fatal(err)
				}
				if violated != 0 {
					t.Fatalf("strategy %v: fixer output violates %d events; enumeration disagrees", strat, violated)
				}
			}
		})
	}
}

// TestDifferentialCondProbVsEnumeration compares the closed-form
// unconditioned event probabilities used by the fixer's criterion against
// the exact probabilities computed by enumeration. A drift here would
// silently invalidate every threshold test, so the tolerance is tight.
func TestDifferentialCondProbVsEnumeration(t *testing.T) {
	for name, inst := range smallInstances(t) {
		inst := inst
		t.Run(name, func(t *testing.T) {
			e := enumerate(t, inst)
			empty := model.NewAssignment(inst)
			for id := 0; id < inst.NumEvents(); id++ {
				got := inst.CondProb(id, empty)
				if math.Abs(got-e.eventProb[id]) > 1e-9 {
					t.Errorf("event %d: CondProb %v, enumeration %v", id, got, e.eventProb[id])
				}
			}
		})
	}
}
