package mt

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/local"
	"repro/internal/model"
	"repro/internal/prng"
)

func TestSequentialSolvesRelaxedSinkless(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(20), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	r := prng.New(1)
	res, err := Sequential(s.Instance, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("MT failed after %d resamplings", res.Resamplings)
	}
	if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
		t.Fatalf("sinks: %v", sinks)
	}
	if !res.Assignment.Complete() {
		t.Fatal("incomplete assignment")
	}
}

func TestSequentialSolvesThresholdSinkless(t *testing.T) {
	// Sinkless orientation is solvable even at the threshold; MT has no
	// guarantee there but in practice converges on cycles.
	s, err := apps.NewSinkless(graph.Cycle(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := prng.New(2)
	res, err := Sequential(s.Instance, r, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("MT failed at threshold after %d resamplings", res.Resamplings)
	}
}

func TestParallelSolvesHyperSinkless(t *testing.T) {
	r := prng.New(3)
	h, err := hypergraph.RandomRegularRank3(30, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Parallel(s.Instance, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("parallel MT failed after %d rounds", res.Rounds)
	}
	if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
		t.Fatalf("sinks: %v", sinks)
	}
}

func TestParallelSolvesWeakSplitting(t *testing.T) {
	r := prng.New(4)
	adj, err := apps.RandomBiregular(20, 3, 20, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	w, err := apps.NewWeakSplitting(adj, 20, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Parallel(w.Instance, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatal("parallel MT failed")
	}
	if mono := w.Monochromatic(res.Assignment); len(mono) != 0 {
		t.Fatalf("monochromatic: %v", mono)
	}
}

func TestResamplingCapRespected(t *testing.T) {
	// An unsatisfiable instance: a single event that always occurs.
	b := model.NewBuilder()
	x := b.AddVariable(dist.Uniform(2), "x")
	b.AddEvent([]int{x}, func([]int) bool { return true }, nil, "always")
	inst := b.MustBuild()
	r := prng.New(5)
	res, err := Sequential(inst, r, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Fatal("unsatisfiable instance reported satisfied")
	}
	if res.Resamplings != 50 {
		t.Fatalf("resamplings = %d, want cap 50", res.Resamplings)
	}
	pres, err := Parallel(inst, r, 30)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Satisfied || pres.Rounds != 30 {
		t.Fatalf("parallel cap not respected: %+v", pres)
	}
}

func TestOneShotViolationCount(t *testing.T) {
	// With an always-bad event, one-shot must report it.
	b := model.NewBuilder()
	x := b.AddVariable(dist.Uniform(2), "x")
	b.AddEvent([]int{x}, func([]int) bool { return true }, nil, "always")
	b.AddEvent([]int{x}, func([]int) bool { return false }, nil, "never")
	inst := b.MustBuild()
	r := prng.New(6)
	_, violated, err := OneShot(inst, r)
	if err != nil {
		t.Fatal(err)
	}
	if violated != 1 {
		t.Fatalf("violated = %d, want 1", violated)
	}
}

func TestEstimateFailureRateMatchesTheory(t *testing.T) {
	// A single event with probability 1/4: failure rate should estimate
	// 0.25 within sampling error.
	b := model.NewBuilder()
	x := b.AddVariable(dist.Uniform(4), "x")
	b.AddEvent([]int{x}, func(v []int) bool { return v[0] == 0 }, nil, "E")
	inst := b.MustBuild()
	r := prng.New(7)
	rate, mean, err := EstimateFailureRate(inst, r, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-0.25) > 0.02 {
		t.Fatalf("failure rate %v, want ~0.25", rate)
	}
	if math.Abs(mean-0.25) > 0.02 {
		t.Fatalf("mean violations %v, want ~0.25", mean)
	}
	if _, _, err := EstimateFailureRate(inst, r, 0); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestResamplingsGrowTowardThreshold(t *testing.T) {
	// The cost of randomized solving grows as the margin p·2^d approaches
	// 1 — the "price" side of the sharp threshold.
	r := prng.New(8)
	avg := func(margin float64) float64 {
		g := graph.Cycle(64)
		s, err := apps.NewSinklessWithMargin(g, margin)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		const trials = 30
		for i := 0; i < trials; i++ {
			res, err := Sequential(s.Instance, r, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Satisfied {
				t.Fatalf("margin %v: MT failed", margin)
			}
			total += res.Resamplings
		}
		return float64(total) / trials
	}
	cheap := avg(0.3)
	costly := avg(0.99)
	if costly < cheap {
		t.Fatalf("resamplings at margin 0.99 (%v) below margin 0.3 (%v)", costly, cheap)
	}
}

func TestSequentialDeterministicForSeed(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(12), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	run := func() int {
		res, err := Sequential(s.Instance, prng.New(99), 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Resamplings
	}
	if run() != run() {
		t.Fatal("same seed produced different resampling counts")
	}
}

func BenchmarkSequentialMT(b *testing.B) {
	s, err := apps.NewSinkless(graph.Cycle(128), 0.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sequential(s.Instance, prng.New(uint64(i)), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelMT(b *testing.B) {
	r := prng.New(1)
	h, err := hypergraph.RandomRegularRank3(60, 3, r)
	if err != nil {
		b.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parallel(s.Instance, prng.New(uint64(i)), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDistributedMTSolvesRelaxedSinkless(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(16), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distributed(s.Instance, 1, 60, local.Options{IDSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("distributed MT failed after %d iterations (%d resamplings)",
			res.Iterations, res.Resamplings)
	}
	if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
		t.Fatalf("sinks: %v", sinks)
	}
	if res.Rounds != 3*res.Iterations {
		t.Fatalf("rounds = %d, want %d", res.Rounds, 3*res.Iterations)
	}
}

func TestDistributedMTSolvesHyperSinkless(t *testing.T) {
	r := prng.New(4)
	h, err := hypergraph.RandomRegularRank3(15, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distributed(s.Instance, 7, 80, local.Options{IDSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("distributed MT failed (%d resamplings)", res.Resamplings)
	}
}

func TestDistributedMTDeterministicForSeeds(t *testing.T) {
	s, err := apps.NewSinkless(graph.Cycle(10), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (int, []int) {
		res, err := Distributed(s.Instance, 42, 40, local.Options{IDSeed: 9})
		if err != nil {
			t.Fatal(err)
		}
		vals, _ := res.Assignment.Values()
		return res.Resamplings, vals
	}
	r1, v1 := run()
	r2, v2 := run()
	if r1 != r2 {
		t.Fatalf("resamplings differ: %d vs %d", r1, r2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("assignments differ between identical runs")
		}
	}
}

func TestDistributedMTBudgetCanFail(t *testing.T) {
	// With a 1-iteration budget on a hard-ish instance, failure is
	// possible and must be reported honestly.
	s, err := apps.NewSinklessWithMargin(graph.Cycle(64), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distributed(s.Instance, 3, 1, local.Options{IDSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Skip("lucky single iteration (allowed)")
	}
	if res.Iterations != 1 || res.Rounds != 3 {
		t.Fatalf("budget accounting wrong: %+v", res)
	}
}

func TestDistributedMTMatchesCentralizedSelection(t *testing.T) {
	// The LOCAL implementation and the centralized Parallel variant use
	// the same local-minimum selection rule; on identical instances both
	// must converge (not necessarily to the same assignment: the
	// randomness streams differ).
	s, err := apps.NewSinkless(graph.Cycle(20), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := Distributed(s.Instance, 11, 80, local.Options{IDSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := Parallel(s.Instance, prng.New(11), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dres.Satisfied || !cres.Satisfied {
		t.Fatalf("convergence mismatch: distributed=%v centralized=%v", dres.Satisfied, cres.Satisfied)
	}
}
