// Command localsim measures round complexities of the distributed
// algorithms on the LOCAL-model runtime: the colouring substrate
// (Cole-Vishkin, Linial vertex/edge/distance-2 colouring) and the
// distributed LLL fixers, as n grows with the degree held fixed — making
// the "poly(d) + log* n" shape visible.
//
// The fixer tables report the full LOCAL execution record (rounds, machine
// steps, messages). If a run fails mid-round, localsim prints the partial
// stats up to the failing round to stderr and exits non-zero.
//
// Observability: -metrics-addr serves /metrics, /debug/vars and
// /debug/pprof live during the sweep; -trace-out streams one JSONL event
// per LOCAL round; -profile writes CPU and heap profiles.
//
// Usage:
//
//	localsim [-ns "16,64,256,1024"] [-seed N] [-r3]
//	         [-metrics-addr :9090] [-trace-out trace.jsonl] [-profile prefix]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	lll "repro"
	"repro/internal/coloring"
	"repro/internal/exp"
	"repro/internal/local"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "localsim:", err)
		os.Exit(1)
	}
}

func run() error {
	nsFlag := flag.String("ns", "16,64,256,1024", "comma-separated node counts")
	seed := flag.Uint64("seed", 1, "ID seed")
	withR3 := flag.Bool("r3", false, "also run the (slower) rank-3 distributed fixer sweep")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090; empty = off)")
	traceOut := flag.String("trace-out", "", "write structured JSONL trace events to this file (empty = off)")
	profile := flag.String("profile", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles")
	flag.Parse()

	ns, err := parseInts(*nsFlag)
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "localsim: serving metrics on http://%s/metrics (pprof under /debug/pprof)\n", srv.Addr)
	}
	var rec *obs.Recorder
	if *traceOut != "" {
		r, closeRec, err := obs.NewFileRecorder(*traceOut)
		if err != nil {
			return fmt.Errorf("trace output: %w", err)
		}
		rec = r
		defer closeRec()
	}
	if *profile != "" {
		stop, err := obs.StartProfiles(*profile)
		if err != nil {
			return fmt.Errorf("profiles: %w", err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "localsim: writing profiles:", err)
			}
		}()
	}
	lopts := local.Options{IDSeed: *seed, Metrics: reg, Trace: rec}

	colTbl := &exp.Table{
		ID:     "S1",
		Title:  "Colouring substrate rounds on cycles and trees (degree-2 / random trees)",
		Note:   "All columns must be flat in n up to O(1): the log*(n) term (shown for reference).",
		Header: []string{"n", "log*(n)", "CV cycle (3 col)", "CV tree (3 col)", "Linial vertex (3 col)", "edge colouring", "distance-2"},
	}
	for _, n := range ns {
		cv, err := coloring.ColeVishkinCycle(n, *seed)
		if err != nil {
			return err
		}
		tree := mustTree(n, *seed)
		parent, err := coloring.ParentsFromBFS(tree)
		if err != nil {
			return err
		}
		cvt, err := coloring.ColeVishkinForest(tree, parent, *seed)
		if err != nil {
			return err
		}
		g := lll.NewCycle(n)
		vc, err := coloring.DistributedVertexColoring(g, lopts, 3)
		if err != nil {
			return err
		}
		ec, err := coloring.DistributedEdgeColoring(g, lopts)
		if err != nil {
			return err
		}
		d2, err := coloring.DistributedDistance2Coloring(g, lopts)
		if err != nil {
			return err
		}
		colTbl.AddRow(n, coloring.LogStar(float64(n)), cv.Rounds, cvt.Rounds, vc.Rounds,
			ec.Rounds*ec.SimFactor, d2.Rounds*d2.SimFactor)
	}
	colTbl.Render(os.Stdout)

	lllTbl := &exp.Table{
		ID:     "S2",
		Title:  "Distributed LLL fixer rounds on relaxed sinkless orientation (cycles)",
		Note:   "Corollary 1.2: total = colouring + fixing; flat in n up to the log* term. steps/messages are the LOCAL runtime's full execution record of the fixing phase.",
		Header: []string{"n", "classes", "colour rounds", "fix rounds", "total", "steps", "messages", "violations"},
	}
	for _, n := range ns {
		s, err := lll.NewSinkless(lll.NewCycle(n), 0.2)
		if err != nil {
			return err
		}
		res, err := lll.SolveDistributed(s.Instance, lll.Options{Metrics: reg}, lopts)
		if err != nil {
			lllTbl.Render(os.Stdout)
			return partialFailure("S2", n, res, err)
		}
		lllTbl.AddRow(n, res.Classes, res.ColoringRounds, res.FixingRounds, res.TotalRounds,
			res.LocalStats.Steps, res.LocalStats.MessagesSent, res.ViolatedEvents)
	}
	lllTbl.Render(os.Stdout)

	if *withR3 {
		r3Tbl := &exp.Table{
			ID:     "S3",
			Title:  "Distributed rank-3 fixer rounds (hyper-sinkless, hypergraph degree 2)",
			Note:   "Corollary 1.4: dominated by the distance-2 colouring's poly(d) term.",
			Header: []string{"n", "classes", "colour rounds", "fix rounds", "total", "steps", "messages", "violations"},
		}
		for _, n := range ns {
			for n%3 != 0 {
				n++
			}
			h, err := lll.NewRandomRegularRank3(n, 2, lll.NewRand(uint64(n)))
			if err != nil {
				return err
			}
			s, err := lll.NewHyperSinkless(h, 0.4)
			if err != nil {
				return err
			}
			res, err := lll.SolveDistributed(s.Instance, lll.Options{Metrics: reg}, lopts)
			if err != nil {
				r3Tbl.Render(os.Stdout)
				return partialFailure("S3", n, res, err)
			}
			r3Tbl.AddRow(n, res.Classes, res.ColoringRounds, res.FixingRounds, res.TotalRounds,
				res.LocalStats.Steps, res.LocalStats.MessagesSent, res.ViolatedEvents)
		}
		r3Tbl.Render(os.Stdout)
	}
	return nil
}

// partialFailure reports a mid-sweep fixer failure: the partial LOCAL stats
// (well defined up to the failing round) go to stderr and the returned
// error makes main exit non-zero.
func partialFailure(sweep string, n int, res *lll.DistResult, err error) error {
	if res != nil {
		st := res.LocalStats
		fmt.Fprintf(os.Stderr, "localsim: %s n=%d failed after %d fixing rounds (%d machine steps, %d messages sent)\n",
			sweep, n, st.Rounds, st.Steps, st.MessagesSent)
	}
	return err
}

func mustTree(n int, seed uint64) *lll.Graph {
	return lll.NewRandomTree(n, lll.NewRand(seed))
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad count %q: %w", p, err)
		}
		if v < 3 {
			return nil, fmt.Errorf("count %d too small", v)
		}
		out = append(out, v)
	}
	return out, nil
}
