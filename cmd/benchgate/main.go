// Command benchgate is the CI benchmark-regression gate: it diffs the
// freshly generated `make bench-json` document against the committed
// BENCH_*.json trajectory and fails (exit 1) on regression. Two rule sets
// apply, both defined in internal/benchset so the gate, the benchmarks and
// the JSON tooling agree on workloads and names: tolerance bands against
// the baseline (generous on rounds/sec, which moves with the CI machine;
// tight on allocs/round, which is a deterministic property of the code),
// and machine-independent intra-run ratios (the n = 100k kernel scan must
// beat the generic scan by the pinned factor on the same machine). A third
// set of absolute ceilings needs no baseline at all: the disabled
// observability path must stay at exactly zero allocs/op on any machine.
//
// Usage:
//
//	benchgate -baseline BENCH_pr5.json -current BENCH_pr6.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run() error {
	baselinePath := flag.String("baseline", "", "committed baseline BENCH_*.json")
	currentPath := flag.String("current", "", "freshly generated BENCH_*.json")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		return fmt.Errorf("both -baseline and -current are required")
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		return err
	}
	current, err := load(*currentPath)
	if err != nil {
		return err
	}
	problems := benchset.Compare(baseline, current,
		benchset.DefaultBaselineRules(), benchset.DefaultRatioRules(), benchset.DefaultAbsoluteRules())
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", p)
		}
		return fmt.Errorf("%d regression(s) against %s", len(problems), *baselinePath)
	}
	fmt.Printf("benchgate: %s passes against %s (%d benchmarks checked)\n",
		*currentPath, *baselinePath, len(current.Benchmarks))
	return nil
}

func load(path string) (*benchset.Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchset.Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &doc, nil
}
