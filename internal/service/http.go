package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// NewHandler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec → 202 + job view
//	POST   /v1/jobs/batch       submit a BatchRequest → 202 + job view
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        job view (spec, state, result)
//	GET    /v1/jobs/{id}/events NDJSON event stream, follows to terminal
//	GET    /v1/jobs/{id}/checkpoint  latest saved checkpoint + resume spec
//	DELETE /v1/jobs/{id}        cancel (idempotent)
//	GET    /v1/tenants          per-tenant live accounting (share, quotas)
//	GET    /healthz             200 serving | 503 draining
//	GET    /slo                 SLO burn-rate status (when Config.SLO is set)
//	/metrics, /debug/*          observability (obs.Handler on reg)
//
// Clustered services (Config.Cluster set) additionally serve the
// node-to-node peer protocol (404 when standalone):
//
//	GET    /v1/peer/cache/{key} cache lookup; ?claim=1&wait_ms=N joins the
//	                            cluster-wide single-flight for the key
//	PUT    /v1/peer/cache/{key} write-through store, releases the claim
//	POST   /v1/peer/membership  adopt a fanned-out membership (if newer)
//	POST   /v1/peer/handoff     receive one warm-cache handoff chunk
//	GET    /cluster             this node's membership view (epoch, nodes)
//	POST   /cluster/members     admin join/leave: mint epoch, fan out
//
// Submissions may carry an X-Tenant header naming the tenant to account
// the job to (a body-carried "tenant" field wins); see Config.Tenancy.
//
// Error mapping: 400 invalid spec/body or unknown tenant, 404 unknown id,
// 429 queue full / tenant rate limit / tenant quota (with Retry-After),
// 503 draining or shed (SLO fast burn, or the tenant's live p99 over the
// job's deadline — also with Retry-After; both are transient, so clients
// should back off and retry the same way they do on 429).
func NewHandler(s *Service, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	oh := obs.Handler(reg, obs.Endpoint{Pattern: "/slo", Handler: s.cfg.SLO.Handler()})
	mux.Handle("/metrics", oh)
	mux.Handle("/debug/", oh)
	mux.Handle("/slo", oh)

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var js JobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&js); err != nil {
			http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
			return
		}
		applyTenantHeader(&js, r)
		job, err := s.Submit(js)
		if submitError(w, err) {
			return
		}
		writeJSON(w, http.StatusAccepted, job.View())
	})

	mux.HandleFunc("POST /v1/jobs/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			http.Error(w, "bad batch request: "+err.Error(), http.StatusBadRequest)
			return
		}
		js, err := req.JobSpec()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		applyTenantHeader(&js, r)
		job, err := s.Submit(js)
		if submitError(w, err) {
			return
		}
		writeJSON(w, http.StatusAccepted, job.View())
	})

	mux.HandleFunc("GET /v1/tenants", s.tenantsHandler)

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, _ *http.Request) {
		jobs := s.List()
		views := make([]View, len(jobs))
		for i, j := range jobs {
			views[i] = j.View()
		}
		writeJSON(w, http.StatusOK, views)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Get(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job.View())
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job.View())
	})

	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Get(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		streamEvents(w, r, job)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.exportCheckpoint)

	if s.peers != nil {
		mux.HandleFunc("GET /v1/peer/cache/{key}", s.peerCacheGet)
		mux.HandleFunc("PUT /v1/peer/cache/{key}", s.peerCachePut)
		mux.HandleFunc("POST /v1/peer/membership", s.peerMembershipPost)
		mux.HandleFunc("POST /v1/peer/handoff", s.peerHandoffPost)
		mux.HandleFunc("GET /cluster", s.clusterGet)
		mux.HandleFunc("POST /cluster/members", s.clusterMembersPost)
	}

	return mux
}

// applyTenantHeader fills the spec's tenant from the X-Tenant request
// header when the body did not name one — the header is how routers and
// gateways attribute traffic without rewriting the JSON body. A
// body-carried tenant wins (it survives re-submission of an exported
// spec).
func applyTenantHeader(js *JobSpec, r *http.Request) {
	if js.Tenant == "" {
		js.Tenant = r.Header.Get("X-Tenant")
	}
}

// submitError maps a Submit error onto the response (writing it and
// reporting true), or reports false for a nil error. The transient
// rejections — queue full, rate limit, quota, draining, shed — carry
// Retry-After so well-behaved clients back off instead of hammering; the
// tenant rejections compute it from the tenant's own refill rate.
func submitError(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrRateLimited), errors.Is(err, ErrQuotaExceeded):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(err)))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrDraining), errors.Is(err, ErrShed):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrDeadlineShed):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(err)))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
	return true
}

// BatchRequest is the wire format of POST /v1/jobs/batch: either an
// explicit list of per-instance specs, or a template stamped out Count
// times. The resulting batch runs as ONE job whose NDJSON event stream is
// multiplexed by the 1-based Event.Instance id and whose result carries
// one InstanceSummary per instance.
type BatchRequest struct {
	// Template is the spec every instance starts from (ignored when Specs
	// is set).
	Template JobSpec `json:"template"`
	// Count is the number of instances stamped from Template.
	Count int `json:"count,omitempty"`
	// Seeds overrides the per-instance seeds (length must equal Count when
	// both are set; len(Seeds) instances are stamped when Count is 0).
	Seeds []uint64 `json:"seeds,omitempty"`
	// VarySeed gives instance i the seed Template.Seed + i. Without it
	// (and without Seeds) every instance is identical — the cache
	// exercise.
	VarySeed bool `json:"vary_seed,omitempty"`
	// Specs lists the instances explicitly instead of a template.
	Specs []JobSpec `json:"specs,omitempty"`
	// Cache / BatchGroup / Workers / TimeoutMS / MaxRetries / Tenant set
	// the corresponding fields of the batch job.
	Cache      bool   `json:"cache,omitempty"`
	BatchGroup string `json:"batch_group,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	TimeoutMS  int64  `json:"timeout_ms,omitempty"`
	MaxRetries int    `json:"max_retries,omitempty"`
	Tenant     string `json:"tenant,omitempty"`
}

// JobSpec converts the request into the batch JobSpec submitted to the
// service.
func (req BatchRequest) JobSpec() (JobSpec, error) {
	subs := req.Specs
	if len(subs) == 0 {
		count := req.Count
		if count == 0 {
			count = len(req.Seeds)
		}
		if count <= 0 {
			return JobSpec{}, fmt.Errorf("batch request needs specs, count or seeds")
		}
		if len(req.Seeds) > 0 && len(req.Seeds) != count {
			return JobSpec{}, fmt.Errorf("batch request has %d seeds for count %d", len(req.Seeds), count)
		}
		subs = make([]JobSpec, count)
		for i := range subs {
			subs[i] = req.Template
			switch {
			case len(req.Seeds) > 0:
				subs[i].Seed = req.Seeds[i]
			case req.VarySeed:
				seed := req.Template.Seed
				if seed == 0 {
					seed = 1
				}
				subs[i].Seed = seed + uint64(i)
			}
		}
	}
	return JobSpec{
		Batch:      subs,
		Cache:      req.Cache,
		BatchGroup: req.BatchGroup,
		Workers:    req.Workers,
		TimeoutMS:  req.TimeoutMS,
		MaxRetries: req.MaxRetries,
		Tenant:     req.Tenant,
	}, nil
}

// streamEvents serves a job's event stream as NDJSON: every event already
// recorded, then live events as they are appended, until the job reaches a
// terminal state (the "end" event is always the last line) or the client
// disconnects. Each line is flushed immediately so a curl reader sees
// rounds as they happen. A ?from=N query resumes the stream at sequence N,
// letting a disconnected client re-attach without replaying what it saw.
func streamEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	next := 0
	if f := r.URL.Query().Get("from"); f != "" {
		if n, err := strconv.Atoi(f); err == nil && n > 0 {
			next = n
		}
	}
	for {
		events, more, state := job.EventsSince(next)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return // client gone
			}
		}
		next += len(events)
		if len(events) > 0 && flusher != nil {
			flusher.Flush()
		}
		// Only stop once the stream is fully drained: state and events
		// update atomically under the job's lock, so a terminal snapshot
		// already contains the final "end" event.
		if len(events) == 0 && state.Terminal() {
			return
		}
		if len(events) > 0 {
			continue
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
