package core

import (
	"fmt"
	"io"
	"strings"
)

// TraceStep records one variable-fixing decision of the sequential process:
// which variable was fixed to which value, the events it affects, the
// per-event increase factors of the chosen value, and the per-event φ
// products on the variable's clique before and after the update. Traces
// make the bookkeeping of property P* inspectable step by step.
type TraceStep struct {
	// Index is the position of the step in the fixing order (0-based).
	Index int
	// VarID is the fixed variable.
	VarID int
	// Rank is the number of events the variable affects.
	Rank int
	// Value is the chosen value index.
	Value int
	// Events are the affected event identifiers (ascending).
	Events []int
	// Incs[i] is Inc(Events[i], Value): the conditional-probability
	// increase factor the choice caused for each affected event.
	Incs []float64
	// Before[i] and After[i] are the φ products of Events[i] over the
	// variable's clique edges, before and after the update.
	Before, After []float64
}

// Trace accumulates the steps of one sequential fixing run. Pass it via
// Options.Trace; the zero value is ready to use.
type Trace struct {
	Steps []TraceStep
}

// CSV writes the trace as comma-separated values with a header row. Slice
// columns are rendered as ';'-joined lists.
func (t *Trace) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "index,var,rank,value,events,incs,before,after"); err != nil {
		return err
	}
	for _, s := range t.Steps {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%s,%s,%s,%s\n",
			s.Index, s.VarID, s.Rank, s.Value,
			joinInts(s.Events), joinFloats(s.Incs), joinFloats(s.Before), joinFloats(s.After))
		if err != nil {
			return err
		}
	}
	return nil
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ";")
}

func joinFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.6g", x)
	}
	return strings.Join(parts, ";")
}

// record appends a step to the fixer's trace (no-op without one). It is
// called after the assignment and φ updates of the step are complete;
// before must have been captured by the caller prior to the update.
func (f *fixer) record(vid, value int, events []int, incs, before []float64) {
	if f.opts.Trace == nil {
		return
	}
	after := make([]float64, len(events))
	for i, e := range events {
		after[i] = f.cliqueProduct(e, events)
	}
	f.opts.Trace.Steps = append(f.opts.Trace.Steps, TraceStep{
		Index:  len(f.opts.Trace.Steps),
		VarID:  vid,
		Rank:   len(events),
		Value:  value,
		Events: append([]int(nil), events...),
		Incs:   incs,
		Before: before,
		After:  after,
	})
}

// cliqueProduct returns the product of event e's φ values over the edges to
// the other events in the clique.
func (f *fixer) cliqueProduct(e int, events []int) float64 {
	prod := 1.0
	for _, o := range events {
		if o == e {
			continue
		}
		if id, ok := f.g.EdgeBetween(e, o); ok {
			prod *= f.ps.Value(id, e)
		}
	}
	return prod
}

// captureBefore snapshots the clique products and the chosen value's Inc
// factors prior to fixing, when tracing is on.
func (f *fixer) captureBefore(vid int, events []int) (before []float64) {
	if f.opts.Trace == nil {
		return nil
	}
	before = make([]float64, len(events))
	for i, e := range events {
		before[i] = f.cliqueProduct(e, events)
	}
	return before
}

// captureIncs computes the Inc factors of value for each event, when
// tracing is on. It must run before the assignment is updated.
func (f *fixer) captureIncs(vid, value int, events []int) []float64 {
	if f.opts.Trace == nil {
		return nil
	}
	incs := make([]float64, len(events))
	for i, e := range events {
		incs[i] = f.orc.Inc(e, f.a, vid, value)
	}
	return incs
}
