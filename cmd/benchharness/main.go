// Command benchharness regenerates every figure and experiment table of the
// reproduction (F1, F2, T1-T11 in DESIGN.md) and prints them to stdout. It
// is the one-shot entry point behind EXPERIMENTS.md.
//
// Independent experiments run concurrently on a sharded worker pool
// (-workers, default GOMAXPROCS); tables are collected per experiment and
// emitted in DESIGN.md order, so the output matches a sequential run
// cell for cell (only T6's wall-clock timing columns vary run to run).
//
// Observability: -metrics-addr serves the live metric families of every
// experiment (each under its own <id>_ prefix) on /metrics (Prometheus
// text), /debug/vars (JSON) and /debug/pprof (net/http/pprof); -trace-out
// streams one structured JSONL event per LOCAL round / resampling
// iteration; -profile writes CPU and heap profiles; -profiles appends the
// per-experiment wall-clock and engine rollup table. None of these change
// the table bytes — the golden tests pin that.
//
// Usage:
//
//	benchharness [-seed N] [-scale F] [-trials N] [-only ID] [-workers N] [-csv]
//	             [-metrics-addr :9090] [-trace-out trace.jsonl]
//	             [-profile prefix] [-profiles] [-linger 30s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchharness:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Uint64("seed", 1, "experiment seed")
	scale := flag.Float64("scale", 1, "instance size scale factor")
	trials := flag.Int("trials", 0, "randomized repetitions (0 = per-experiment default)")
	only := flag.String("only", "", "run a single experiment by ID (F1, F2, T1..T11)")
	csv := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	workers := flag.Int("workers", 0, "concurrent experiments and LOCAL-engine workers (0 = GOMAXPROCS, 1 = sequential)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090; empty = off)")
	traceOut := flag.String("trace-out", "", "write structured JSONL trace events to this file (empty = off)")
	profile := flag.String("profile", "", "write <prefix>.cpu.pprof and <prefix>.heap.pprof profiles")
	profiles := flag.Bool("profiles", false, "append the per-experiment wall-clock/engine-rollup table")
	linger := flag.Duration("linger", 0, "keep the metrics listener serving this long after the run (for scraping)")
	flag.Parse()

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "benchharness: serving metrics on http://%s/metrics (pprof under /debug/pprof)\n", srv.Addr)
		if *linger > 0 {
			defer time.Sleep(*linger)
		}
	}
	var rec *obs.Recorder
	if *traceOut != "" {
		r, closeRec, err := obs.NewFileRecorder(*traceOut)
		if err != nil {
			return fmt.Errorf("trace output: %w", err)
		}
		rec = r
		defer closeRec()
	}
	if *profile != "" {
		stop, err := obs.StartProfiles(*profile)
		if err != nil {
			return fmt.Errorf("profiles: %w", err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "benchharness: writing profiles:", err)
			}
		}()
	}

	emit := func(tbl *exp.Table) error {
		if *csv {
			fmt.Printf("# %s: %s\n", tbl.ID, tbl.Title)
			return tbl.CSV(os.Stdout)
		}
		tbl.Render(os.Stdout)
		return nil
	}
	sz := exp.Sizes{Scale: *scale, Trials: *trials, Workers: *workers, Metrics: reg, Trace: rec}

	var (
		tables []*exp.Table
		err    error
	)
	if *only == "" {
		tables, err = exp.AllParallel(*seed, sz, *workers)
	} else {
		var tbl *exp.Table
		tbl, err = exp.RunByID(*only, *seed, sz)
		if tbl != nil {
			tables = append(tables, tbl)
		}
	}
	for _, tbl := range tables {
		if eerr := emit(tbl); eerr != nil {
			return eerr
		}
	}
	if *profiles {
		if eerr := emit(exp.ProfileTable(tables)); eerr != nil {
			return eerr
		}
	}
	return err
}
