// Command benchjson converts `go test -bench` output on stdin into the
// machine-readable BENCH_*.json document cmd/benchgate diffs against the
// committed trajectory. It exists for `make bench-json`, which pins the
// PR's benchmark evidence (rounds/sec, allocs/round, ns/op for the
// n = 100k benchmarks at -cpu 1,2,4), but it parses any benchmark stream:
// each result line is `BenchmarkName-CPUS  iterations  value unit ...`,
// and every value/unit pair (ns/op, B/op, allocs/op and custom
// b.ReportMetric units such as rounds/sec) becomes a metrics entry.
//
// The document schema and the pinned workload names live in
// internal/benchset, shared with the benchmarks themselves and with the
// gate; -require fails the run when any benchset.Required() name is
// missing from the stream, so a renamed or skipped benchmark breaks
// `make bench-json` instead of silently thinning the trajectory.
//
// Usage:
//
//	go test -run=NONE -bench ... -benchmem -cpu 1,2,4 ./... | benchjson -require -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "", "write JSON here (empty = stdout)")
	require := flag.Bool("require", false, "fail unless every benchset.Required() benchmark is present")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	if *require {
		for _, name := range benchset.Required() {
			if len(doc.Find(name)) == 0 {
				return fmt.Errorf("required benchmark %s missing from the stream", name)
			}
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

func parse(sc *bufio.Scanner) (*benchset.Doc, error) {
	doc := &benchset.Doc{}
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkgs = append(doc.Pkgs, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			doc.Benchmarks = append(doc.Benchmarks, res)
		}
	}
	return doc, sc.Err()
}

// parseResult parses one `BenchmarkName-N  iters  value unit ...` line.
func parseResult(line string) (benchset.Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return benchset.Result{}, fmt.Errorf("short benchmark line: %q", line)
	}
	name, cpus := splitCPUs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchset.Result{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	res := benchset.Result{Name: name, CPUs: cpus, Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return benchset.Result{}, fmt.Errorf("unpaired value/unit fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return benchset.Result{}, fmt.Errorf("bad metric value %q in %q: %w", rest[i], line, err)
		}
		res.Metrics[rest[i+1]] = v
	}
	return res, nil
}

// splitCPUs strips the trailing -N GOMAXPROCS suffix a benchmark name
// carries when GOMAXPROCS > 1. Sub-benchmark names may themselves contain
// dashes, so only a trailing all-digit segment counts.
func splitCPUs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}
