// Package conjecture explores Conjecture 1.5 of the paper: that the sharp
// threshold at p = 2^-d persists for variables affecting ANY number r of
// events, with the same O(d² + log* n) deterministic algorithm.
//
// The paper proves the r = 3 case through the closed-form surface f(a, b)
// of the representable-triple set and its convexity; for r > 3 the authors
// state that "finding such an expression and using this knowledge to show
// that the associated function is convex is the only challenge" — all other
// parts of the framework generalize. This package supplies the missing
// piece NUMERICALLY: a feasibility solver for the rank-r generalization of
// representable tuples, plugged into the same fixing loop, and an empirical
// harness measuring whether the generalized process ever fails strictly
// below the threshold (the conjecture predicts: never).
//
// Rank-r representability. For a variable affecting events 1..r, the
// bookkeeping lives on the C(r,2) dependency edges among them; a tuple
// (a_1, ..., a_r) ∈ R^r≥0 is representable if there are values
// x_{ij}^i, x_{ij}^j ∈ [0, 2] with x_{ij}^i + x_{ij}^j ≤ 2 for every pair
// {i, j} and ∏_{j≠i} x_{ij}^i ≥ a_i for every i. (Definition 3.3 is the
// case r = 3 with equality; dominance is what Lemma 3.2 actually uses.)
// Since increasing any value never hurts, edge sums can be taken to equal
// 2, leaving one split parameter per edge — the object the solver searches.
package conjecture

import (
	"fmt"
	"math"
)

// Tolerance used by the feasibility checks.
const tol = 1e-9

// Witness is a feasible edge-value realization for a rank-r tuple:
// Side[i][j] is the value x_{ij}^i owned by event index i on the edge to
// event index j (Side[i][i] is unused and zero).
type Witness struct {
	R    int
	Side [][]float64
}

// Products returns ∏_{j≠i} Side[i][j] for every i.
func (w Witness) Products() []float64 {
	out := make([]float64, w.R)
	for i := range out {
		p := 1.0
		for j := 0; j < w.R; j++ {
			if j != i {
				p *= w.Side[i][j]
			}
		}
		out[i] = p
	}
	return out
}

// Valid reports whether all values lie in [0, 2] and all pair sums are at
// most 2 (within eps).
func (w Witness) Valid(eps float64) bool {
	for i := 0; i < w.R; i++ {
		for j := i + 1; j < w.R; j++ {
			a, b := w.Side[i][j], w.Side[j][i]
			if a < -eps || a > 2+eps || b < -eps || b > 2+eps || a+b > 2+eps {
				return false
			}
			if math.IsNaN(a) || math.IsNaN(b) {
				return false
			}
		}
	}
	return true
}

// Dominates reports whether the witness products cover target componentwise
// (within eps).
func (w Witness) Dominates(target []float64, eps float64) bool {
	prods := w.Products()
	for i, t := range target {
		if prods[i] < t-eps {
			return false
		}
	}
	return true
}

// Feasible searches for a witness dominating the target tuple. It
// parameterizes each edge {i, j} with a split s ∈ (0, 1) — sides 2s and
// 2(1-s), the WLOG-maximal edge sum — and runs balancing coordinate ascent
// on max-min slack: for one edge with the rest fixed, the slack of i is
// C_i + ln(2s) and of j is C_j + ln(2(1-s)), so the 1-D max-min optimum is
// the balancing split s = 1 / (1 + e^(C_i - C_j)). Components with target 0
// are ignored (always satisfiable).
//
// For r = 3 this provably converges to the true feasibility answer in the
// cases the test suite cross-checks against the closed-form surface; for
// r ≥ 4 it is a (conservative) heuristic: a returned witness is always
// genuinely feasible, while a "not found" is only evidence.
func Feasible(target []float64) (Witness, bool) {
	r := len(target)
	if r < 2 {
		return Witness{}, false
	}
	for _, t := range target {
		if t < 0 || math.IsNaN(t) {
			return Witness{}, false
		}
	}
	// Quick necessary condition (generalizing a+b <= 4): for any pair,
	// a_i^(1/(r-1)) ... skip; rely on the solver plus validation.

	// active[i]: component i has a positive target (needs covering).
	logT := make([]float64, r)
	for i, t := range target {
		if t <= tol {
			logT[i] = math.Inf(-1) // always satisfied
		} else {
			logT[i] = math.Log(t)
		}
	}

	// split[i][j] for i < j: fraction of edge {i,j} owned by i.
	split := make([][]float64, r)
	for i := range split {
		split[i] = make([]float64, r)
		for j := range split[i] {
			split[i][j] = 0.5
		}
	}
	side := func(i, j int) float64 {
		if i < j {
			return 2 * split[i][j]
		}
		return 2 * (1 - split[j][i])
	}
	// logProd[i] = Σ_{j≠i} ln(side(i,j)).
	logProd := func(i int) float64 {
		s := 0.0
		for j := 0; j < r; j++ {
			if j != i {
				s += math.Log(side(i, j))
			}
		}
		return s
	}

	// Phase 1: pairwise balancing coordinate ascent. Each 1-D subproblem
	// (one edge, others fixed) has the closed-form optimum
	// s = 1/(1 + e^(C_i - C_j)); this converges fast but, because the
	// objective min_i slack_i(s) is concave-but-nonsmooth, it can stall on
	// a ridge.
	const iterations = 200
	for it := 0; it < iterations; it++ {
		changed := 0.0
		for i := 0; i < r; i++ {
			for j := i + 1; j < r; j++ {
				ci := logProd(i) - math.Log(side(i, j)) - logT[i]
				cj := logProd(j) - math.Log(side(j, i)) - logT[j]
				var s float64
				switch {
				case math.IsInf(ci, 1) && math.IsInf(cj, 1):
					s = 0.5
				case math.IsInf(ci, 1): // i needs nothing: give j everything
					s = minSplit
				case math.IsInf(cj, 1):
					s = 1 - minSplit
				default:
					s = 1 / (1 + math.Exp(ci-cj))
					if s < minSplit {
						s = minSplit
					}
					if s > 1-minSplit {
						s = 1 - minSplit
					}
				}
				changed += math.Abs(split[i][j] - s)
				split[i][j] = s
			}
		}
		if changed < 1e-12 {
			break
		}
	}

	// Phase 2: subgradient ascent on F(s) = min_i slack_i(s). Every
	// slack_i is concave in s (a sum of ln(2s) / ln(2(1-s)) terms), so F
	// is concave and subgradient ascent with diminishing steps converges
	// to the global maximum; we keep the best iterate.
	minSlack := func() (float64, int) {
		worst, arg := math.Inf(1), -1
		for i := 0; i < r; i++ {
			if math.IsInf(logT[i], -1) {
				continue
			}
			if s := logProd(i) - logT[i]; s < worst {
				worst, arg = s, i
			}
		}
		return worst, arg
	}
	bestSlack, _ := minSlack()
	bestSplit := cloneSplit(split)
	if bestSlack < 0 {
		for t := 1; t <= 400 && bestSlack < 0; t++ {
			slack, i := minSlack()
			if i < 0 {
				break
			}
			if slack > bestSlack {
				bestSlack = slack
				bestSplit = cloneSplit(split)
			}
			step := 0.25 / math.Sqrt(float64(t))
			// Subgradient of slack_i w.r.t. each of i's edge splits.
			for j := 0; j < r; j++ {
				if j == i {
					continue
				}
				if i < j {
					// side(i,j) = 2s: ∂slack_i/∂s = 1/s.
					split[i][j] = clampSplit(split[i][j] + step*(1-split[i][j]))
				} else {
					// side(i,j) = 2(1-s_ji): ∂slack_i/∂s = -1/(1-s).
					split[j][i] = clampSplit(split[j][i] - step*split[j][i])
				}
			}
		}
		if slack, _ := minSlack(); slack > bestSlack {
			bestSlack = slack
			bestSplit = cloneSplit(split)
		}
		split = bestSplit
	}

	w := Witness{R: r, Side: make([][]float64, r)}
	for i := range w.Side {
		w.Side[i] = make([]float64, r)
		for j := 0; j < r; j++ {
			if j != i {
				w.Side[i][j] = side(i, j)
			}
		}
	}
	if !w.Valid(tol) || !w.Dominates(target, tol) {
		return Witness{}, false
	}
	// Scale each event's sides down so products match the target exactly
	// (scaling down never violates the sum constraints). Components with
	// zero target keep their slack — the caller's bound only needs
	// domination.
	prods := w.Products()
	for i, t := range target {
		if t <= tol || prods[i] <= 0 {
			continue
		}
		scale := math.Pow(t/prods[i], 1/float64(r-1))
		if scale < 1 {
			for j := 0; j < r; j++ {
				if j != i {
					w.Side[i][j] *= scale
				}
			}
		}
	}
	if !w.Valid(tol) || !w.Dominates(target, 1e-6) {
		return Witness{}, false
	}
	return w, true
}

// minSplit keeps splits strictly inside (0,1) so logarithms stay finite.
const minSplit = 1e-9

func clampSplit(s float64) float64 {
	if s < minSplit {
		return minSplit
	}
	if s > 1-minSplit {
		return 1 - minSplit
	}
	return s
}

func cloneSplit(split [][]float64) [][]float64 {
	out := make([][]float64, len(split))
	for i := range split {
		out[i] = append([]float64(nil), split[i]...)
	}
	return out
}

// String renders the witness for diagnostics.
func (w Witness) String() string {
	return fmt.Sprintf("Witness(r=%d, products=%v)", w.R, w.Products())
}
