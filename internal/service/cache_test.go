package service

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/obs"
)

// realService builds a Service running the real RunSpec pipeline with a
// result cache, sized so tests never hit admission control.
func realService(t *testing.T, reg *obs.Registry, cacheSize int) *Service {
	t.Helper()
	s := New(Config{QueueCap: 64, MaxInFlight: 4, Metrics: reg, CacheSize: cacheSize})
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return s
}

func runJob(t *testing.T, s *Service, js JobSpec) *Summary {
	t.Helper()
	j, err := s.Submit(js)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	v := j.View()
	if v.Result == nil {
		t.Fatalf("job %s finished without a result", j.ID)
	}
	return v.Result
}

// cacheSpec is a small real workload every cache test reuses.
func cacheSpec(seed uint64) JobSpec {
	return JobSpec{Family: FamilySinkless, N: 24, Algorithm: AlgMTPar, Seed: seed, Cache: true}
}

// TestCacheHitBitIdentical: a warm job returns the exact Summary of the
// cold solve — every field identical except the CacheHit marker — and the
// hit is visible in the cache_* metrics and the event stream.
func TestCacheHitBitIdentical(t *testing.T) {
	reg := obs.NewRegistry()
	s := realService(t, reg, 8)

	cold := runJob(t, s, cacheSpec(5))
	if cold.CacheHit {
		t.Fatal("cold solve marked as a cache hit")
	}

	j, err := s.Submit(cacheSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	warm := j.View().Result

	if !warm.CacheHit {
		t.Fatal("second identical job was not served from the cache")
	}
	normalized := *warm
	normalized.CacheHit = false
	if !reflect.DeepEqual(*cold, normalized) {
		t.Fatalf("cache hit is not bit-identical to the cold solve:\ncold: %+v\nwarm: %+v", *cold, normalized)
	}

	events, _, _ := j.EventsSince(0)
	found := false
	for _, e := range events {
		if e.Kind == "cache_hit" {
			found = true
		}
	}
	if !found {
		t.Error("warm job's event stream has no cache_hit event")
	}
	if got := reg.Counter("cache_hits_total").Value(); got != 1 {
		t.Errorf("cache_hits_total = %d, want 1", got)
	}
	if got := reg.Counter("cache_stores_total").Value(); got != 1 {
		t.Errorf("cache_stores_total = %d, want 1", got)
	}
	if got := reg.Counter("cache_misses_total").Value(); got < 1 {
		t.Errorf("cache_misses_total = %d, want >= 1", got)
	}
}

// TestCacheWorkerCountCollapses: jobs differing only in Workers share one
// cache entry — the engine determinism contract makes their results
// identical, so the key deliberately excludes the worker count.
func TestCacheWorkerCountCollapses(t *testing.T) {
	reg := obs.NewRegistry()
	s := realService(t, reg, 8)

	js := cacheSpec(9)
	js.Workers = 1
	cold := runJob(t, s, js)

	js.Workers = 2
	warm := runJob(t, s, js)
	if !warm.CacheHit {
		t.Fatal("job differing only in workers missed the cache")
	}
	normalized := *warm
	normalized.CacheHit = false
	if !reflect.DeepEqual(*cold, normalized) {
		t.Fatalf("worker-count variant not bit-identical:\ncold: %+v\nwarm: %+v", *cold, normalized)
	}
}

// TestCacheOptIn: without cache:true the same job solves twice.
func TestCacheOptIn(t *testing.T) {
	reg := obs.NewRegistry()
	s := realService(t, reg, 8)

	js := cacheSpec(3)
	js.Cache = false
	runJob(t, s, js)
	if warm := runJob(t, s, js); warm.CacheHit {
		t.Fatal("cache served a job that did not opt in")
	}
	if got := reg.Counter("cache_stores_total").Value(); got != 0 {
		t.Errorf("cache_stores_total = %d, want 0 without opt-in", got)
	}
}

// TestCacheSkipsFaultInjectedJobs: fault injection makes runs
// attempt-dependent, so such jobs bypass the cache entirely.
func TestCacheSkipsFaultInjectedJobs(t *testing.T) {
	reg := obs.NewRegistry()
	s := realService(t, reg, 8)

	js := cacheSpec(4)
	js.FaultPanicRate = 0.001
	js.MaxRetries = 3
	j, err := s.Submit(js)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !j.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("fault-injected job did not terminate")
		}
		time.Sleep(time.Millisecond)
	}
	if got := reg.Counter("cache_stores_total").Value(); got != 0 {
		t.Errorf("cache stored a fault-injected result (stores = %d)", got)
	}
}

// TestCacheEviction: an LRU cache of capacity 2 under three distinct jobs
// evicts the oldest entry; re-running it misses and re-solves.
func TestCacheEviction(t *testing.T) {
	reg := obs.NewRegistry()
	s := realService(t, reg, 2)

	runJob(t, s, cacheSpec(1))
	runJob(t, s, cacheSpec(2))
	runJob(t, s, cacheSpec(3)) // evicts seed 1
	if got := reg.Counter("cache_evictions_total").Value(); got != 1 {
		t.Fatalf("cache_evictions_total = %d, want 1", got)
	}
	if got := reg.Gauge("cache_entries").Value(); got != 2 {
		t.Fatalf("cache_entries = %v, want 2", got)
	}
	if warm := runJob(t, s, cacheSpec(1)); warm.CacheHit {
		t.Fatal("evicted entry still served a hit")
	}
	if warm := runJob(t, s, cacheSpec(3)); !warm.CacheHit {
		t.Fatal("most-recent entry was evicted (LRU order broken)")
	}
}

// TestSingleFlightDedup: concurrent identical cacheable jobs collapse onto
// one leader solve; the followers wait and are served from the cache the
// leader populated.
func TestSingleFlightDedup(t *testing.T) {
	reg := obs.NewRegistry()
	r := newStubRunner()
	s := New(Config{QueueCap: 16, MaxInFlight: 4, Metrics: reg, CacheSize: 8, Runner: r.run})
	defer s.Shutdown(context.Background())

	js := JobSpec{Family: FamilySinkless, N: 16, Algorithm: AlgMTPar, Seed: 7, Cache: true}
	jobs := make([]*Job, 3)
	for i := range jobs {
		j, err := s.Submit(js)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	waitStarted(t, r) // the leader is solving; followers must wait, not start

	// Give followers time to reach the flight group, then release the
	// leader exactly once.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("cache_singleflight_waits_total").Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("followers did not join the flight (waits = %d)",
				reg.Counter("cache_singleflight_waits_total").Value())
		}
		time.Sleep(time.Millisecond)
	}
	r.release <- struct{}{}
	for _, j := range jobs {
		waitState(t, j, StateDone)
	}

	if got := r.runs.Load(); got != 1 {
		t.Fatalf("runner executed %d solves for 3 identical jobs, want 1", got)
	}
	hits := 0
	for _, j := range jobs {
		if j.View().Result.CacheHit {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("%d of 3 jobs were cache hits, want 2 (followers only)", hits)
	}
}

// TestSingleFlightFollowerTakesOverOnLeaderFailure: when the leader fails,
// a waiting follower must not inherit the failure — it re-checks the cache,
// finds nothing, and solves itself.
func TestSingleFlightFollowerTakesOver(t *testing.T) {
	reg := obs.NewRegistry()
	r := newStubRunner()
	s := New(Config{QueueCap: 16, MaxInFlight: 4, Metrics: reg, CacheSize: 8, Runner: r.run})
	defer s.Shutdown(context.Background())

	js := JobSpec{Family: FamilySinkless, N: 16, Algorithm: AlgMTPar, Seed: 8, Cache: true}
	a, err := s.Submit(js)
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, r)
	b, err := s.Submit(js)
	if err != nil {
		t.Fatal(err)
	}
	for reg.Counter("cache_singleflight_waits_total").Value() < 1 {
		time.Sleep(time.Millisecond)
	}

	// Cancel the leader: its run fails, nothing is cached, and the
	// follower must take over and solve.
	if _, err := s.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	waitStarted(t, r) // the follower's own solve
	r.release <- struct{}{}
	waitState(t, b, StateDone)
	if b.View().Result.CacheHit {
		t.Fatal("follower behind a failed leader must not report a cache hit")
	}
	if got := r.runs.Load(); got != 2 {
		t.Fatalf("runner executed %d solves, want 2 (failed leader + follower)", got)
	}
}

// TestBatchPathGoroutineLeak: the batch path must not leak goroutines —
// private pools are closed and follower bookkeeping drains.
func TestBatchPathGoroutineLeak(t *testing.T) {
	s := realService(t, obs.NewRegistry(), 8)
	before := runtime.NumGoroutine()

	js := JobSpec{Cache: true, Workers: 2}
	for i := 0; i < 6; i++ {
		js.Batch = append(js.Batch, JobSpec{Family: FamilySinkless, N: 16, Algorithm: AlgMTPar, Seed: uint64(i % 3)})
	}
	runJob(t, s, js)

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after a batch job", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCacheInlineRelabeledDistinct: two relabeled isomorphic inline
// instances are WL-indistinguishable, so the canonical hash alone cannot
// tell them apart — but mtseq/seq results depend on event index order, so
// serving one instance's Summary for the other would be wrong. The cache
// key folds the raw inline bytes (and the generation parameters) on top of
// the WL hash, keeping the two apart while identical resubmissions still
// collapse.
func TestCacheInlineRelabeledDistinct(t *testing.T) {
	reg := obs.NewRegistry()
	s := realService(t, reg, 8)

	instA := []byte(`{"version":1,"variables":[{"probs":[0.5,0.5]},{"probs":[0.5,0.5]},{"probs":[0.5,0.5]}],"events":[{"kind":"allEqual","scope":[0,1]},{"kind":"allEqual","scope":[1,2]}]}`)
	instB := []byte(`{"version":1,"variables":[{"probs":[0.5,0.5]},{"probs":[0.5,0.5]},{"probs":[0.5,0.5]}],"events":[{"kind":"allEqual","scope":[2,1]},{"kind":"allEqual","scope":[1,0]}]}`)
	mk := func(raw []byte) JobSpec {
		return JobSpec{Family: FamilyInline, Instance: raw, Algorithm: AlgMTSeq, Cache: true}
	}

	// Sanity-check the scenario: the two instances really are
	// WL-indistinguishable, so only the spec fields keep their keys apart.
	na, err := mk(instA).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := mk(instB).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	ia, err := buildInstance(na)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := buildInstance(nb)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Hash(ia) != batch.Hash(ib) {
		t.Fatal("test instances are WL-distinguishable; use a relabeled isomorphic pair")
	}
	if cacheKey(na, batch.Hash(ia)) == cacheKey(nb, batch.Hash(ib)) {
		t.Fatal("distinct inline instances share a cache key")
	}

	if cold := runJob(t, s, mk(instA)); cold.CacheHit {
		t.Fatal("first inline job marked as a cache hit")
	}
	if second := runJob(t, s, mk(instB)); second.CacheHit {
		t.Fatal("distinct inline instance served from its relabeled sibling's cache entry")
	}
	if warm := runJob(t, s, mk(instA)); !warm.CacheHit {
		t.Error("identical inline resubmission missed the cache")
	}
	if got := reg.Counter("cache_stores_total").Value(); got != 2 {
		t.Errorf("cache_stores_total = %d, want 2 (one per distinct instance)", got)
	}
}
