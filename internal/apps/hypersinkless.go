package apps

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/hypergraph"
	"repro/internal/model"
)

// HyperSinkless is the rank-3 analogue of relaxed sinkless orientation: on a
// 3-uniform hypergraph, every hyperedge carries one variable that orients
// the hyperedge towards one of its three members (its "head") or, with
// probability δ, towards nobody. The bad event at node v is "every incident
// hyperedge has head v".
//
// Each variable affects exactly the three events of its members, so the
// instance has rank r = 3 and exercises Theorem 1.3. For a hypergraph with
// node degrees ≥ k, the margin is p·2^d ≤ ((1-δ)/3)^k · 2^(2k), which is
// strictly below 1 for δ > 1/4 — the reason the builders default to
// δ = 0.4.
type HyperSinkless struct {
	Instance *model.Instance
	Hyper    *hypergraph.Hypergraph
	// EdgeVar maps a hyperedge identifier to its variable identifier.
	EdgeVar []int
	// Slack is the relaxation parameter δ used at build time.
	Slack float64
	// Rank is the uniform hyperedge size k; the variable value k means
	// "headless" and values 0..k-1 select the head among the (sorted)
	// members.
	Rank int
}

// HyperFree is the variable value meaning "the hyperedge has no head" for
// the 3-uniform instances. (For the general k-uniform builder the free
// value is k; see HyperSinkless.Rank.)
const HyperFree = 3

// NewHyperSinkless builds the instance on the 3-uniform hypergraph h with
// slack δ ∈ (0, 1). All hyperedges must have exactly three members and all
// nodes degree at least one.
func NewHyperSinkless(h *hypergraph.Hypergraph, slack float64) (*HyperSinkless, error) {
	return NewHyperSinklessUniform(h, 3, slack)
}

// NewHyperSinklessUniform builds the relaxed sinkless-orientation instance
// on a k-uniform hypergraph: every hyperedge points at one of its k members
// (uniformly, total probability 1-δ) or at nobody (probability δ); the bad
// event at node v is "every incident hyperedge has head v". Variables have
// rank k, so k = 3 is the Theorem 1.3 regime and k ≥ 4 the Conjecture 1.5
// regime explored by internal/conjecture.
func NewHyperSinklessUniform(h *hypergraph.Hypergraph, k int, slack float64) (*HyperSinkless, error) {
	if slack <= 0 || slack >= 1 {
		return nil, fmt.Errorf("apps: hyper-sinkless slack %v outside (0, 1)", slack)
	}
	if k < 2 {
		return nil, fmt.Errorf("apps: hyper-sinkless rank %d < 2", k)
	}
	for id := 0; id < h.M(); id++ {
		if len(h.Edge(id)) != k {
			return nil, fmt.Errorf("apps: hyperedge %d has %d members, want %d", id, len(h.Edge(id)), k)
		}
	}
	for v := 0; v < h.N(); v++ {
		if h.Degree(v) == 0 {
			return nil, fmt.Errorf("apps: node %d has degree 0", v)
		}
	}
	probs := make([]float64, k+1)
	for i := 0; i < k; i++ {
		probs[i] = (1 - slack) / float64(k)
	}
	probs[k] = slack
	d, err := dist.New(probs)
	if err != nil {
		return nil, fmt.Errorf("apps: building hyperedge distribution: %w", err)
	}

	b := model.NewBuilder()
	edgeVar := make([]int, h.M())
	for id := 0; id < h.M(); id++ {
		edgeVar[id] = b.AddVariable(d, fmt.Sprintf("hedge%v", h.Edge(id)))
	}
	for v := 0; v < h.N(); v++ {
		ids := h.Incident(v)
		scope := make([]int, len(ids))
		badSets := make([][]int, len(ids))
		dists := make([]*dist.Distribution, len(ids))
		for i, id := range ids {
			scope[i] = edgeVar[id]
			dists[i] = d
			badSets[i] = []int{memberIndex(h.Edge(id), v)}
		}
		model.AddConjunctionEvent(b, scope, badSets, dists, fmt.Sprintf("hypersink@%d", v))
	}
	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("apps: building hyper-sinkless instance: %w", err)
	}
	return &HyperSinkless{Instance: inst, Hyper: h, EdgeVar: edgeVar, Slack: slack, Rank: k}, nil
}

// NewHyperSinklessMixed builds the relaxed sinkless-orientation instance on
// a hypergraph with MIXED hyperedge sizes (each between 2 and maxRank): a
// hyperedge of size k points at one of its members (probability (1-δ)/k
// each) or at nobody (probability δ). Variables therefore have mixed ranks,
// exercising the rank-2 and rank-3 paths of the fixers within one instance.
// The value k of a size-k hyperedge's variable means "headless".
func NewHyperSinklessMixed(h *hypergraph.Hypergraph, maxRank int, slack float64) (*HyperSinkless, error) {
	if slack <= 0 || slack >= 1 {
		return nil, fmt.Errorf("apps: hyper-sinkless slack %v outside (0, 1)", slack)
	}
	for id := 0; id < h.M(); id++ {
		if k := len(h.Edge(id)); k < 2 || k > maxRank {
			return nil, fmt.Errorf("apps: hyperedge %d has %d members, want 2..%d", id, k, maxRank)
		}
	}
	for v := 0; v < h.N(); v++ {
		if h.Degree(v) == 0 {
			return nil, fmt.Errorf("apps: node %d has degree 0", v)
		}
	}
	b := model.NewBuilder()
	edgeVar := make([]int, h.M())
	edgeDist := make([]*dist.Distribution, h.M())
	for id := 0; id < h.M(); id++ {
		k := len(h.Edge(id))
		probs := make([]float64, k+1)
		for i := 0; i < k; i++ {
			probs[i] = (1 - slack) / float64(k)
		}
		probs[k] = slack
		d, err := dist.New(probs)
		if err != nil {
			return nil, fmt.Errorf("apps: building hyperedge distribution: %w", err)
		}
		edgeDist[id] = d
		edgeVar[id] = b.AddVariable(d, fmt.Sprintf("hedge%v", h.Edge(id)))
	}
	for v := 0; v < h.N(); v++ {
		ids := h.Incident(v)
		scope := make([]int, len(ids))
		badSets := make([][]int, len(ids))
		dists := make([]*dist.Distribution, len(ids))
		for i, id := range ids {
			scope[i] = edgeVar[id]
			dists[i] = edgeDist[id]
			badSets[i] = []int{memberIndex(h.Edge(id), v)}
		}
		model.AddConjunctionEvent(b, scope, badSets, dists, fmt.Sprintf("hypersink@%d", v))
	}
	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("apps: building mixed hyper-sinkless instance: %w", err)
	}
	return &HyperSinkless{Instance: inst, Hyper: h, EdgeVar: edgeVar, Slack: slack, Rank: -1}, nil
}

func memberIndex(members []int, v int) int {
	for i, m := range members {
		if m == v {
			return i
		}
	}
	panic(fmt.Sprintf("apps: node %d not a member of hyperedge %v", v, members))
}

// HeadOf returns the head node of hyperedge id under the complete
// assignment a, or -1 if the hyperedge is headless. (The headless value of
// a size-k hyperedge's variable is k, for uniform and mixed instances
// alike.)
func (s *HyperSinkless) HeadOf(edgeID int, a *model.Assignment) int {
	members := s.Hyper.Edge(edgeID)
	val := a.Value(s.EdgeVar[edgeID])
	if val == len(members) {
		return -1
	}
	return members[val]
}

// Sinks returns the nodes that are heads of all their incident hyperedges
// under the complete assignment a. A correct solution has none.
func (s *HyperSinkless) Sinks(a *model.Assignment) []int {
	var sinks []int
	for v := 0; v < s.Hyper.N(); v++ {
		isSink := true
		for _, id := range s.Hyper.Incident(v) {
			if s.HeadOf(id, a) != v {
				isSink = false
				break
			}
		}
		if isSink {
			sinks = append(sinks, v)
		}
	}
	return sinks
}
