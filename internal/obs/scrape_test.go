package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// parseScrape pulls one histogram out of a /metrics text scrape: the
// cumulative bucket counts in order of bound, the trailing +Inf bucket, the
// _count and the _sum lines. It fails the test on malformed lines — that is
// half the point of the round trip.
type scrapedHist struct {
	bounds  []string
	buckets []int64 // cumulative, same order as bounds (+Inf last)
	count   int64
	sum     float64
}

func parseScrape(t *testing.T, text, name string) scrapedHist {
	t.Helper()
	var h scrapedHist
	sawCount, sawSum := false, false
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		series, valStr := fields[0], fields[1]
		switch {
		case strings.HasPrefix(series, name+"_bucket{le=\""):
			bound := strings.TrimSuffix(strings.TrimPrefix(series, name+"_bucket{le=\""), "\"}")
			n, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			h.bounds = append(h.bounds, bound)
			h.buckets = append(h.buckets, n)
		case series == name+"_count":
			n, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				t.Fatalf("count line %q: %v", line, err)
			}
			h.count, sawCount = n, true
		case series == name+"_sum":
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("sum line %q: %v", line, err)
			}
			h.sum, sawSum = v, true
		}
	}
	if len(h.buckets) == 0 || !sawCount || !sawSum {
		t.Fatalf("scrape missing histogram %q:\n%s", name, text)
	}
	return h
}

// checkHistInvariants asserts the Prometheus histogram contract on one
// scrape: cumulative buckets are monotone, the +Inf bucket equals _count,
// and — because every observation here has value obsValue — _sum covers at
// least obsValue per counted observation (Observe adds the sum first).
func checkHistInvariants(t *testing.T, h scrapedHist, obsValue float64) {
	t.Helper()
	for i := 1; i < len(h.buckets); i++ {
		if h.buckets[i] < h.buckets[i-1] {
			t.Fatalf("buckets not monotone at %d: %v", i, h.buckets)
		}
	}
	last := len(h.buckets) - 1
	if h.bounds[last] != "+Inf" {
		t.Fatalf("last bucket bound = %q, want +Inf (bounds %v)", h.bounds[last], h.bounds)
	}
	if h.buckets[last] != h.count {
		t.Fatalf("+Inf bucket %d != _count %d", h.buckets[last], h.count)
	}
	if want := obsValue * float64(h.count); h.sum < want-1e-6 {
		t.Fatalf("_sum %v < %v (= %v × count %d): sum lags counted observations", h.sum, want, obsValue, h.count)
	}
}

// TestScrapeParseRoundTripUnderConcurrency is the end-to-end consistency
// test for the text exposition: while writers hammer a histogram, a scraper
// repeatedly renders /metrics, parses it back, and asserts the histogram
// invariants on every intermediate scrape — not just the quiesced final
// one. Before the snapshot fix, a scrape racing Observe could render a
// +Inf bucket behind _count and an undershooting _sum.
func TestScrapeParseRoundTripUnderConcurrency(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("lat_seconds", []float64{0.1, 1})
	const obsValue = 0.5
	const writers, perWriter = 8, 2000

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				hist.Observe(obsValue)
			}
		}()
	}

	// Scrape continuously while the writers run.
	scrapes := 0
	for !stop.Load() {
		var sb strings.Builder
		reg.WriteText(&sb)
		h := parseScrape(t, sb.String(), "lat_seconds")
		checkHistInvariants(t, h, obsValue)
		scrapes++
		if scrapes == 1 {
			// Close the loop once the writers are done: one more scrape below.
			go func() { wg.Wait(); stop.Store(true) }()
		}
	}

	var sb strings.Builder
	reg.WriteText(&sb)
	h := parseScrape(t, sb.String(), "lat_seconds")
	checkHistInvariants(t, h, obsValue)
	if want := int64(writers * perWriter); h.count != want {
		t.Fatalf("final count = %d, want %d", h.count, want)
	}
	if h.buckets[0] != 0 || h.buckets[1] != int64(writers*perWriter) {
		t.Fatalf("final buckets = %v (bounds %v)", h.buckets, h.bounds)
	}

	// The JSON snapshot must agree with the text exposition.
	snap := reg.TakeSnapshot()
	hs, ok := snap.Histograms["lat_seconds"]
	if !ok {
		t.Fatalf("snapshot lacks histogram: %+v", snap.Histograms)
	}
	if hs.Count != h.count || hs.Buckets[len(hs.Buckets)-1] != h.count {
		t.Fatalf("snapshot count %d / +Inf %d disagree with scrape %d", hs.Count, hs.Buckets[len(hs.Buckets)-1], h.count)
	}
}

// TestHandlerExtraEndpoints: obs.Handler mounts caller-supplied endpoints
// (the /slo hook), skips empty or nil entries, and keeps the stock
// endpoints working.
func TestHandlerExtraEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total").Add(7)
	extra := Endpoint{Pattern: "/slo", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"fast_burn":false}`)
	})}
	h := Handler(reg,
		extra,
		Endpoint{Pattern: "", Handler: extra.Handler}, // skipped: no pattern
		Endpoint{Pattern: "/nil", Handler: nil},       // skipped: no handler
	)
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/slo"); code != http.StatusOK || !strings.Contains(body, "fast_burn") {
		t.Fatalf("/slo: %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "hits_total 7") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars: %d %q", code, body)
	} else {
		var s Snapshot
		if err := json.Unmarshal([]byte(body), &s); err != nil {
			t.Fatalf("/debug/vars not JSON: %v", err)
		}
	}
	if code, _ := get("/nil"); code != http.StatusNotFound {
		t.Fatalf("/nil should be unmounted, got %d", code)
	}
}

// TestServeExtraEndpoints: the Serve convenience path forwards extras too.
func TestServeExtraEndpoints(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, Endpoint{Pattern: "/slo", Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "ok")
	})})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/slo", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("/slo via Serve: %d %q", resp.StatusCode, body)
	}
}
