package apps

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/hypergraph"
	"repro/internal/model"
	"repro/internal/prng"
)

// RandomConjunction is a margin-calibrated random LLL instance: one
// conjunction event per node of a hypergraph (bad iff every incident
// hyperedge variable hits one specific random value AND the node's private
// coin fires), with the coin probabilities chosen so that EVERY event's
// failure probability is exactly margin·2^-d_v for its own dependency
// degree d_v. Unlike the orientation families, the bad tuples are
// arbitrary, which makes this the stress-test workload for the fixers: no
// structural symmetry to hide behind.
type RandomConjunction struct {
	Instance *model.Instance
	Hyper    *hypergraph.Hypergraph
	// EdgeVar maps hyperedge identifiers to variable identifiers.
	EdgeVar []int
	// CoinVar maps nodes to their private coin variables.
	CoinVar []int
	// Margin is the calibrated per-event margin p_v·2^(d_v).
	Margin float64
}

// NewRandomConjunction builds the instance over the hypergraph h (rank ≤ 3
// for the proven fixers; any rank for the conjecture machinery). Every
// hyperedge variable is uniform over values values; margin ∈ (0, 1) is the
// per-event margin p_v·2^(d_v). Nodes of degree 0 are rejected.
func NewRandomConjunction(h *hypergraph.Hypergraph, values int, margin float64, r *prng.Rand) (*RandomConjunction, error) {
	if values < 2 {
		return nil, fmt.Errorf("apps: need at least 2 values per variable, got %d", values)
	}
	if margin <= 0 || margin >= 1 {
		return nil, fmt.Errorf("apps: margin %v outside (0, 1)", margin)
	}
	for v := 0; v < h.N(); v++ {
		if h.Degree(v) == 0 {
			return nil, fmt.Errorf("apps: node %d has degree 0", v)
		}
	}
	dg := h.DependencyGraph()

	b := model.NewBuilder()
	edgeDist := dist.Uniform(values)
	edgeVar := make([]int, h.M())
	for id := 0; id < h.M(); id++ {
		edgeVar[id] = b.AddVariable(edgeDist, fmt.Sprintf("hedge%v", h.Edge(id)))
	}
	coinVar := make([]int, h.N())
	coinDist := make([]*dist.Distribution, h.N())
	for v := 0; v < h.N(); v++ {
		// Target probability for this event: margin · 2^-d_v. The
		// conjunction over the incident hyperedges already contributes
		// values^-deg; the coin supplies the remainder.
		dv := dg.Degree(v)
		target := margin * math.Pow(2, -float64(dv))
		conj := math.Pow(float64(values), -float64(h.Degree(v)))
		coinP := target / conj
		if coinP >= 1 {
			return nil, fmt.Errorf("apps: node %d: target %v exceeds conjunction probability %v (raise values or lower margin)", v, target, conj)
		}
		cd, err := dist.New([]float64{1 - coinP, coinP})
		if err != nil {
			return nil, fmt.Errorf("apps: building coin for node %d: %w", v, err)
		}
		coinDist[v] = cd
		coinVar[v] = b.AddVariable(cd, fmt.Sprintf("coin%d", v))
	}
	for v := 0; v < h.N(); v++ {
		ids := h.Incident(v)
		scope := make([]int, 0, len(ids)+1)
		badSets := make([][]int, 0, len(ids)+1)
		dists := make([]*dist.Distribution, 0, len(ids)+1)
		for _, id := range ids {
			scope = append(scope, edgeVar[id])
			badSets = append(badSets, []int{r.Intn(values)}) // arbitrary bad value
			dists = append(dists, edgeDist)
		}
		scope = append(scope, coinVar[v])
		badSets = append(badSets, []int{1})
		dists = append(dists, coinDist[v])
		model.AddConjunctionEvent(b, scope, badSets, dists, fmt.Sprintf("conj@%d", v))
	}
	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("apps: building random conjunction instance: %w", err)
	}
	return &RandomConjunction{
		Instance: inst,
		Hyper:    h,
		EdgeVar:  edgeVar,
		CoinVar:  coinVar,
		Margin:   margin,
	}, nil
}
