// Custom instance: use the builder API to express your own LLL problem —
// here a toy "frugal defective colouring" flavour: tasks (variables) are
// assigned to one of three machines; each supervisor (event) oversees three
// tasks and is unhappy iff all of them land on machine 0 AND its private
// alarm coin fires. Every task is shared by at most three supervisors, so
// the instance has rank 3 and the Theorem 1.3 fixer applies.
package main

import (
	"fmt"
	"os"

	lll "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "custom_instance:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		numTasks       = 18
		numSupervisors = 18
	)
	b := lll.NewInstanceBuilder()

	// Task variables: machine 0, 1 or 2, uniformly.
	tasks := make([]int, numTasks)
	for i := range tasks {
		tasks[i] = b.AddVariable(lll.Uniform(3), fmt.Sprintf("task%d", i))
	}
	// One private alarm coin per supervisor (rank-1 variables are free for
	// the fixer: it just picks the harmless value).
	alarm, err := lll.Bernoulli(0.5)
	if err != nil {
		return err
	}

	// Supervisor s oversees tasks s, s+1, s+2 (mod numTasks) — so each task
	// is overseen by exactly three supervisors: rank r = 3.
	for s := 0; s < numSupervisors; s++ {
		coin := b.AddVariable(alarm, fmt.Sprintf("alarm%d", s))
		scope := []int{
			tasks[s%numTasks],
			tasks[(s+1)%numTasks],
			tasks[(s+2)%numTasks],
			coin,
		}
		b.AddEvent(scope, func(v []int) bool {
			return v[0] == 0 && v[1] == 0 && v[2] == 0 && v[3] == 1
		}, nil, fmt.Sprintf("unhappy%d", s))
	}

	inst, err := b.Build()
	if err != nil {
		return err
	}
	p, d, rank := inst.Params()
	_, margin := lll.CheckExponentialCriterion(inst)
	fmt.Printf("instance: %d variables, %d events, p=%.5f d=%d r=%d margin=%.4f\n",
		inst.NumVars(), inst.NumEvents(), p, d, rank, margin)
	if err := lll.Validate(inst); err != nil {
		return err
	}

	// Solve in a scrambled (adversarial) order to demonstrate
	// order-independence.
	order := lll.NewRand(5).Perm(inst.NumVars())
	res, err := lll.SolveInOrder(inst, order, lll.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("solved:   violated=%d (order was a random permutation)\n",
		res.Stats.FinalViolatedEvents)

	for i, t := range tasks {
		fmt.Printf("  task%-2d -> machine %d\n", i, res.Assignment.Value(t))
	}
	if res.Stats.FinalViolatedEvents != 0 {
		return fmt.Errorf("supervisors unhappy")
	}
	fmt.Println("every supervisor is happy — no resampling, no randomness, any order")
	return nil
}
