package router

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/tenant"
)

// NewHandler returns the router's HTTP API. The job surface mirrors a
// single llld node — submit, view, NDJSON events, cancel — so clients
// (lllload, curl recipes) work unchanged against the cluster, with three
// additions:
//
//	GET /cluster          node membership, health, load, and routing stats
//	GET /cluster/metrics  all nodes' /metrics federated, node="..." labels injected
//	GET /cluster/slo      all nodes' /slo responses keyed by node
//
// Job IDs are router-scoped (r000001); the routed node is reported in the
// view's "node" field and stamped on every relayed event. Event streams
// keep dense sequence numbers across migrations.
func NewHandler(r *Router, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(reg))
	mux.Handle("/debug/", obs.Handler(reg))

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		for _, st := range r.members.Snapshot() {
			if st.State.Usable() {
				w.Write([]byte("ok\n"))
				return
			}
		}
		http.Error(w, "no usable nodes", http.StatusServiceUnavailable)
	})

	submit := func(w http.ResponseWriter, js service.JobSpec) {
		job, err := r.Submit(js)
		if err != nil {
			status := http.StatusServiceUnavailable
			if serr, ok := err.(*submitError); ok {
				status = serr.status
			}
			if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, http.StatusAccepted, job.view())
	}

	// relayTenant mirrors the node handler's X-Tenant handling: the header
	// fills an unlabelled spec, and because the router forwards the SPEC
	// (not the original headers) to the placed node, folding it in here is
	// what makes tenancy survive the relay — and any migration retries.
	relayTenant := func(js *service.JobSpec, req *http.Request) {
		if js.Tenant == "" {
			js.Tenant = req.Header.Get("X-Tenant")
		}
	}

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, req *http.Request) {
		var js service.JobSpec
		dec := json.NewDecoder(req.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&js); err != nil {
			http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
			return
		}
		relayTenant(&js, req)
		submit(w, js)
	})

	mux.HandleFunc("POST /v1/jobs/batch", func(w http.ResponseWriter, req *http.Request) {
		var breq service.BatchRequest
		dec := json.NewDecoder(req.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&breq); err != nil {
			http.Error(w, "bad batch request: "+err.Error(), http.StatusBadRequest)
			return
		}
		js, err := breq.JobSpec()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		relayTenant(&js, req)
		submit(w, js)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, _ *http.Request) {
		r.mu.Lock()
		jobs := append([]*routedJob(nil), r.order...)
		r.mu.Unlock()
		views := make([]service.View, len(jobs))
		for i, j := range jobs {
			views[i] = j.view()
		}
		writeJSON(w, http.StatusOK, views)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		job, ok := r.jobs[req.PathValue("id")]
		r.mu.Unlock()
		if !ok {
			http.Error(w, service.ErrNotFound.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job.view())
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, req *http.Request) {
		job, err := r.Cancel(req.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, job.view())
	})

	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		job, ok := r.jobs[req.PathValue("id")]
		r.mu.Unlock()
		if !ok {
			http.Error(w, service.ErrNotFound.Error(), http.StatusNotFound)
			return
		}
		streamRoutedEvents(w, req, job)
	})

	mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, r.ClusterStatus())
	})
	mux.HandleFunc("POST /cluster/members", r.membersPost)
	mux.HandleFunc("GET /cluster/metrics", r.federatedMetrics)
	mux.HandleFunc("GET /cluster/slo", r.federatedSLO)

	return mux
}

// ClusterStatus is the GET /cluster payload.
type ClusterStatus struct {
	// Epoch is the router's current membership version; it advances on
	// every adopted join/leave, so watchers can detect a reload.
	Epoch int64                `json:"epoch"`
	Nodes []cluster.NodeStatus `json:"nodes"`
	// Jobs / Migrations / Lost are the router's lifetime totals.
	Jobs       int64 `json:"jobs"`
	Migrations int64 `json:"migrations"`
	Lost       int64 `json:"lost"`
	// PerNode counts the jobs the router currently tracks per node
	// (terminal jobs included until evicted) — the balance report's input.
	PerNode map[string]int `json:"per_node"`
	// PerTenant counts the tracked jobs per tenant label (unlabelled jobs
	// under "default"), so one GET /cluster shows how tenancy traffic is
	// balanced across the fleet.
	PerTenant map[string]int `json:"per_tenant"`
}

// ClusterStatus assembles the GET /cluster payload.
func (r *Router) ClusterStatus() ClusterStatus {
	perNode := make(map[string]int)
	perTenant := make(map[string]int)
	r.mu.Lock()
	for _, j := range r.order {
		tn := j.spec.Tenant
		if tn == "" {
			tn = tenant.DefaultName
		}
		perTenant[tn]++
		j.mu.Lock()
		perNode[j.node]++
		j.mu.Unlock()
	}
	r.mu.Unlock()
	return ClusterStatus{
		Epoch:      r.Membership().Epoch,
		Nodes:      r.members.Snapshot(),
		Jobs:       r.m.jobs.Value(),
		Migrations: r.m.migrations.Value(),
		Lost:       r.m.lost.Value(),
		PerNode:    perNode,
		PerTenant:  perTenant,
	}
}

// membersPost implements the admin POST /cluster/members on the router:
// mint the next epoch from the change, adopt it (ring hot-reload), fan it
// out to every member, and return the new membership. A joining llld can
// use the router as its seed exactly like any node.
func (r *Router) membersPost(w http.ResponseWriter, req *http.Request) {
	var change cluster.MemberChange
	dec := json.NewDecoder(io.LimitReader(req.Body, 1<<20))
	if err := dec.Decode(&change); err != nil {
		http.Error(w, "bad member change: "+err.Error(), http.StatusBadRequest)
		return
	}
	cur := r.Membership()
	var next cluster.Membership
	switch change.Action {
	case "join":
		if change.Name == "" || change.URL == "" {
			http.Error(w, "join needs name and url", http.StatusBadRequest)
			return
		}
		next = cur.WithJoin(change.Name, change.URL)
	case "leave":
		if change.Name == "" {
			http.Error(w, "leave needs name", http.StatusBadRequest)
			return
		}
		next = cur.WithLeave(change.Name)
	default:
		http.Error(w, fmt.Sprintf("unknown action %q", change.Action), http.StatusBadRequest)
		return
	}
	r.AdoptMembership(next)
	// Fan out synchronously: the handler returns once every reachable
	// member has the new set, so the caller (a joining node, an operator
	// script) can rely on handoffs being underway.
	for _, base := range next.Nodes {
		r.pushMembership(base, next)
	}
	writeJSON(w, http.StatusOK, next)
}

// federatedMetrics concatenates every node's /metrics exposition with a
// node="<name>" label injected into each sample, so one scrape of the
// router covers the whole cluster with per-node series.
func (r *Router) federatedMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, st := range r.members.Snapshot() {
		resp, err := r.client.Get(st.URL + "/metrics")
		if err != nil {
			fmt.Fprintf(w, "# node %s unreachable: %s\n", st.Name, strings.ReplaceAll(err.Error(), "\n", " "))
			continue
		}
		fmt.Fprintf(w, "# node %s\n", st.Name)
		injectNodeLabel(w, resp.Body, st.Name)
		resp.Body.Close()
	}
}

// injectNodeLabel rewrites one prometheus text exposition, adding
// node="<name>" to every sample line: `m 1` → `m{node="a"} 1`,
// `m{le="5"} 1` → `m{node="a",le="5"} 1`. Comment lines pass through.
func injectNodeLabel(w io.Writer, body io.Reader, node string) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), 4<<20)
	label := `node="` + node + `"`
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			fmt.Fprintln(w, line)
			continue
		}
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			fmt.Fprintln(w, line)
			continue
		}
		name, rest := line[:sp], line[sp:]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			fmt.Fprintf(w, "%s{%s,%s%s\n", name[:i], label, name[i+1:], rest)
		} else {
			fmt.Fprintf(w, "%s{%s}%s\n", name, label, rest)
		}
	}
}

// federatedSLO returns every node's /slo response keyed by node name (raw
// JSON passthrough; unreachable nodes report an error string).
func (r *Router) federatedSLO(w http.ResponseWriter, req *http.Request) {
	out := make(map[string]json.RawMessage)
	for _, st := range r.members.Snapshot() {
		resp, err := r.client.Get(st.URL + "/slo")
		if err != nil {
			blob, _ := json.Marshal(map[string]string{"error": err.Error()})
			out[st.Name] = blob
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK || !json.Valid(body) {
			blob, _ := json.Marshal(map[string]string{"error": fmt.Sprintf("status %d", resp.StatusCode)})
			out[st.Name] = blob
			continue
		}
		out[st.Name] = body
	}
	writeJSON(w, http.StatusOK, out)
}

// streamRoutedEvents serves the router's relayed buffer as NDJSON with the
// same follow-to-terminal and ?from=N semantics as a node's own stream.
func streamRoutedEvents(w http.ResponseWriter, req *http.Request, job *routedJob) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	next := 0
	if f := req.URL.Query().Get("from"); f != "" {
		if n, err := strconv.Atoi(f); err == nil && n > 0 {
			next = n
		}
	}
	for {
		events, more, state := job.eventsSince(next)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		next += len(events)
		if len(events) > 0 && flusher != nil {
			flusher.Flush()
		}
		if len(events) == 0 && state.Terminal() {
			return
		}
		if len(events) > 0 {
			continue
		}
		select {
		case <-more:
		case <-req.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
