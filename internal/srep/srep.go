// Package srep implements the geometry of representable triples from
// Section 3.2 of the paper.
//
// A triple (a, b, c) ∈ R³≥0 is representable (Definition 3.3) if there are
// values a1, a2, b1, b3, c2, c3 ∈ [0, 2] with
//
//	a1·a2 = a,  b1·b3 = b,  c2·c3 = c,
//	a1 + b1 ≤ 2,  a2 + c2 ≤ 2,  b3 + c3 ≤ 2.
//
// The six values live on the three dependency-graph edges of a hyperedge
// {u, v, w}: a1/b1 on {u,v}, a2/c2 on {u,w}, b3/c3 on {v,w}. Lemma 3.5
// characterizes the set S_rep of representable triples by the closed-form
// surface
//
//	f(a, b) = 4 + ½·(ab − 2a − 2b − √(ab(4−a)(4−b))),
//
// as S_rep = {(a,b,c) : a+b ≤ 4, c ≤ f(a,b)}; Lemma 3.6 proves f convex,
// and Lemma 3.7 concludes that S_rep is "incurved" — no point of S_rep lies
// on a segment between two points outside it. Incurvedness is exactly what
// the Variable Fixing Lemma (Lemma 3.2) needs.
//
// This package provides the surface f, the membership test, the constructive
// witness decomposition following the case analysis in the proof of
// Lemma 3.5, and numeric checkers (convexity, incurvedness, surface
// sampling) used by the test suite and by the Figure 1 regeneration.
package srep

import (
	"errors"
	"fmt"
	"math"
)

// DefaultTol is the relative tolerance used by membership tests to absorb
// floating-point error. The existence guarantees of the paper are exact, so
// the tolerance never has to paper over a modelling gap.
const DefaultTol = 1e-9

// ErrNotRepresentable indicates a triple outside S_rep (beyond tolerance).
var ErrNotRepresentable = errors.New("srep: triple is not representable")

// F evaluates the surface function
// f(a, b) = 4 + ½(ab − 2a − 2b − √(ab(4−a)(4−b)))
// of Lemma 3.5. It is defined (and finite) for a, b ∈ [0, 4]; the square
// root argument is clamped at zero to absorb float noise at the boundary.
func F(a, b float64) float64 {
	s := a * b * (4 - a) * (4 - b)
	if s < 0 {
		s = 0
	}
	return 4 + 0.5*(a*b-2*a-2*b-math.Sqrt(s))
}

// IsRepresentable reports whether (a, b, c) ∈ S_rep within tolerance tol
// (use DefaultTol). Negative components are rejected regardless of tol.
func IsRepresentable(a, b, c, tol float64) bool {
	if a < 0 || b < 0 || c < 0 {
		return false
	}
	if a+b > 4+tol {
		return false
	}
	// For a+b marginally above 4 due to clamping concerns, evaluate f at the
	// clamped point.
	aa, bb := math.Min(a, 4), math.Min(b, 4)
	return c <= F(aa, bb)+tol
}

// Witness is a set of six edge values realizing a representable triple:
// A1·A2 = a, B1·B3 = b, C2·C3 = c with A1+B1 ≤ 2, A2+C2 ≤ 2, B3+C3 ≤ 2.
// The naming follows Definition 3.3.
type Witness struct {
	A1, A2 float64 // u's values on edges {u,v} and {u,w}
	B1, B3 float64 // v's values on edges {u,v} and {v,w}
	C2, C3 float64 // w's values on edges {u,w} and {v,w}
}

// Triple returns the triple (A1·A2, B1·B3, C2·C3) realized by the witness.
func (w Witness) Triple() (a, b, c float64) {
	return w.A1 * w.A2, w.B1 * w.B3, w.C2 * w.C3
}

// Valid reports whether the witness satisfies all range and sum constraints
// within tolerance tol.
func (w Witness) Valid(tol float64) bool {
	for _, v := range []float64{w.A1, w.A2, w.B1, w.B3, w.C2, w.C3} {
		if v < -tol || v > 2+tol || math.IsNaN(v) {
			return false
		}
	}
	return w.A1+w.B1 <= 2+tol && w.A2+w.C2 <= 2+tol && w.B3+w.C3 <= 2+tol
}

// Realizes reports whether the witness realizes at least (a, b, c): its
// products must cover the requested triple within tolerance. "At least"
// matches the use in Lemma 3.2, where ψ products must dominate Inc·φ.
func (w Witness) Realizes(a, b, c, tol float64) bool {
	wa, wb, wc := w.Triple()
	return wa >= a-tol && wb >= b-tol && wc >= c-tol
}

// Decompose constructs a witness for the representable triple (a, b, c),
// following the constructive case analysis in the proof of Lemma 3.5. If the
// triple lies outside S_rep by more than DefaultTol it returns
// ErrNotRepresentable. Components marginally outside the surface (float
// noise) are clamped onto it.
func Decompose(a, b, c float64) (Witness, error) {
	const tol = DefaultTol
	if !IsRepresentable(a, b, c, tol) {
		return Witness{}, fmt.Errorf("%w: (%v, %v, %v)", ErrNotRepresentable, a, b, c)
	}
	// Clamp float noise into the exact domain.
	a = clamp(a, 0, 4)
	b = clamp(b, 0, 4)
	if a+b > 4 {
		// Redistribute the (≤ tol) excess.
		excess := a + b - 4
		a -= excess / 2
		b -= excess / 2
	}
	c = clamp(c, 0, 4)

	switch {
	case a == 0 && b == 0:
		// Case a = b = 0: all of c ≤ 4 realizable on the {v,w}/{u,w} edges.
		w := Witness{}
		w.C2, w.C3 = splitProduct(c)
		return w, nil
	case a == 0:
		// Case a = 0, b ≠ 0: f(0, b) = 4 − b.
		w := Witness{B1: 2, B3: b / 2}
		cmax := 2 * (2 - w.B3) // = 4 - b
		w.C2, w.C3 = scaleToProduct(2, 2-w.B3, math.Min(c, cmax))
		return w, nil
	case b == 0:
		// Symmetric case b = 0, a ≠ 0: f(a, 0) = 4 − a.
		w := Witness{A1: 2, A2: a / 2}
		cmax := (2 - w.A2) * 2
		w.C2, w.C3 = scaleToProduct(2-w.A2, 2, math.Min(c, cmax))
		return w, nil
	default:
		// Case a, b ≠ 0. The maximizing split is x1 from the proof:
		// x1 = (a(4−b) − √(ab(4−a)(4−b))) / (2(a−b)), or x = 1 when a = b.
		x := optimalSplit(a, b)
		// Guard the derived range [a/2, 2−b/2] against float error.
		x = clamp(x, a/2, 2-b/2)
		w := Witness{A1: x, A2: a / x, B1: 2 - x, B3: b / (2 - x)}
		cmax := (2 - w.A2) * (2 - w.B3)
		if cmax < 0 {
			cmax = 0
		}
		w.C2, w.C3 = scaleToProduct(2-w.A2, 2-w.B3, math.Min(c, cmax))
		return w, nil
	}
}

// optimalSplit returns the value x ∈ [a/2, 2−b/2] maximizing
// (2 − a/x)(2 − b/(2−x)), i.e. the x1 root from the Lemma 3.5 proof.
// Requires a, b ∈ (0, 4) with a + b ≤ 4.
//
// The textbook form (a(4−b) − √disc) / (2(a−b)) cancels catastrophically as
// b → a; multiplying by the conjugate cancels the (a−b) factor exactly:
//
//	x1 = 2a(4−b) / (a(4−b) + √(ab(4−a)(4−b)))
//
// which is stable on the whole domain and equals 1 at a = b.
func optimalSplit(a, b float64) float64 {
	disc := a * b * (4 - a) * (4 - b)
	if disc < 0 {
		disc = 0
	}
	num := a * (4 - b)
	den := num + math.Sqrt(disc)
	if den == 0 {
		return 1
	}
	return 2 * num / den
}

// splitProduct returns (x, y) with x, y ∈ [0, 2] and x·y = p, for p ∈ [0, 4].
func splitProduct(p float64) (x, y float64) {
	if p <= 0 {
		return 0, 0
	}
	if p >= 4 {
		return 2, 2
	}
	s := math.Sqrt(p)
	return s, p / s
}

// scaleToProduct returns (x, y) with 0 ≤ x ≤ xmax, 0 ≤ y ≤ ymax and
// x·y = p, assuming p ≤ xmax·ymax. Both factors are scaled by the same
// ratio, which keeps them inside their ranges.
func scaleToProduct(xmax, ymax, p float64) (x, y float64) {
	if p <= 0 {
		return 0, 0
	}
	prod := xmax * ymax
	if prod <= 0 {
		return 0, 0
	}
	s := math.Sqrt(p / prod)
	if s > 1 {
		s = 1
	}
	return xmax * s, ymax * s
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MaxCNumeric computes max{c : (a,b,c) ∈ S_rep} by dense scanning over the
// split parameter x, independent of the closed form F. The test suite uses
// it as an oracle for F; the fixers never call it.
func MaxCNumeric(a, b float64, steps int) float64 {
	if a+b > 4 {
		return math.Inf(-1)
	}
	switch {
	case a == 0 && b == 0:
		return 4
	case a == 0:
		return 4 - b
	case b == 0:
		return 4 - a
	}
	lo, hi := a/2, 2-b/2
	if hi < lo {
		return 0
	}
	best := 0.0
	for i := 0; i <= steps; i++ {
		x := lo + (hi-lo)*float64(i)/float64(steps)
		if x <= 0 || x >= 2 {
			continue
		}
		v := (2 - a/x) * (2 - b/(2-x))
		if v > best {
			best = v
		}
	}
	return best
}

// Triple is a point of R³≥0, used by the incurvedness checkers and the
// Figure 1 sampling.
type Triple struct {
	A, B, C float64
}

// In reports membership of the triple in S_rep with tolerance tol.
func (t Triple) In(tol float64) bool { return IsRepresentable(t.A, t.B, t.C, tol) }

// Interpolate returns q·t + (1−q)·o.
func (t Triple) Interpolate(o Triple, q float64) Triple {
	return Triple{
		A: q*t.A + (1-q)*o.A,
		B: q*t.B + (1-q)*o.B,
		C: q*t.C + (1-q)*o.C,
	}
}

// ChordViolation checks the incurvedness property (Definition 3.4) on one
// chord: it returns true (a violation) iff s and o are both OUTSIDE S_rep
// while the interpolated point at q is inside. Lemma 3.7 proves this can
// never happen; the test suite and the Figure 1 harness verify it
// numerically on large random samples.
func ChordViolation(s, o Triple, q, tol float64) bool {
	if s.In(tol) || o.In(tol) {
		return false
	}
	// Use a strict inner test for the midpoint so boundary float noise can
	// not produce false violations.
	m := s.Interpolate(o, q)
	return IsRepresentable(m.A, m.B, m.C, -tol)
}

// SurfacePoint is one sample of the boundary surface of S_rep (Figure 1).
type SurfacePoint struct {
	A, B, C float64 // C = f(A, B)
}

// SurfaceGrid samples the boundary surface c = f(a, b) over the triangle
// {a, b ≥ 0, a + b ≤ 4} with the given step, row-major in a then b. It
// regenerates the data behind Figure 1.
func SurfaceGrid(step float64) []SurfacePoint {
	if step <= 0 {
		panic("srep: SurfaceGrid needs positive step")
	}
	var pts []SurfacePoint
	for a := 0.0; a <= 4+1e-12; a += step {
		for b := 0.0; a+b <= 4+1e-12; b += step {
			aa, bb := math.Min(a, 4), math.Min(b, 4)
			pts = append(pts, SurfacePoint{A: aa, B: bb, C: F(aa, bb)})
		}
	}
	return pts
}
