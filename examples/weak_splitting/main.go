// Weak splitting: the paper's second application. Given a bipartite graph
// B = (V ∪ U, E) where U-nodes have degree ≤ 3 (the rank parameter r) and
// V-nodes degree ≥ 3, colour U with 16 colours such that every V-node sees
// at least two distinct colours. The standard weak-splitting problem
// (2 colours) is P-SLOCAL-complete and sits just ABOVE the exponential
// threshold; this relaxed variant falls below it and is solved
// deterministically by the paper's machinery.
package main

import (
	"fmt"
	"os"

	lll "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "weak_splitting:", err)
		os.Exit(1)
	}
}

func run() error {
	// Random (3,3)-biregular bipartite graph: 18 V-nodes, 18 U-nodes.
	r := lll.NewRand(11)
	adj, err := lll.NewRandomBiregular(18, 3, 18, 3, r)
	if err != nil {
		return err
	}
	w, err := lll.NewWeakSplitting(adj, 18, 16)
	if err != nil {
		return err
	}
	p, d, rank := w.Instance.Params()
	_, margin := lll.CheckExponentialCriterion(w.Instance)
	fmt.Printf("bipartite:  |V|=18 |U|=18, U-degree (rank r) = %d\n", rank)
	fmt.Printf("instance:   p=%.2e d=%d  margin p*2^d=%.4f (16 colours, see >= 2)\n", p, d, margin)

	res, err := lll.Solve(w.Instance, lll.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("solved:     violated=%d\n", res.Stats.FinalViolatedEvents)

	fmt.Println("U colours:")
	for u := 0; u < 18; u++ {
		fmt.Printf("  u%-2d -> colour %2d\n", u, w.ColorOf(u, res.Assignment))
	}
	fmt.Println("V views:")
	for v, nbrs := range w.VNeighbors {
		distinct := map[int]bool{}
		for _, u := range nbrs {
			distinct[w.ColorOf(u, res.Assignment)] = true
		}
		fmt.Printf("  v%-2d neighbours %v see %d distinct colours\n", v, nbrs, len(distinct))
	}
	if mono := w.Monochromatic(res.Assignment); len(mono) > 0 {
		return fmt.Errorf("monochromatic V-nodes: %v", mono)
	}
	fmt.Println("every V-node sees at least two colours — weak splitting solved")
	return nil
}
