package obs

import (
	"sync"
	"time"
)

// FlightEntry is one record of a job's flight recorder: a compact,
// JSON-friendly note of something that happened to the job — a round, a
// fault injection, a retry/backoff decision, a checkpoint capture, a
// panic. Zero fields are omitted from the dump.
type FlightEntry struct {
	// TNS is nanoseconds since the flight recorder was created.
	TNS int64 `json:"t_ns"`
	// Kind names the entry: round | retry | checkpoint | panic | shed |
	// cache_hit | instance_end | ... — producers use their event kinds.
	Kind string `json:"kind"`
	// Attempt is the 1-based attempt the entry belongs to.
	Attempt int `json:"attempt,omitempty"`
	// Round is the 1-based round of a round entry.
	Round int `json:"round,omitempty"`
	// Steps / Active mirror the round's execution stats.
	Steps  int `json:"steps,omitempty"`
	Active int `json:"active,omitempty"`
	// Dropped / Crashed carry the round's injected faults.
	Dropped int `json:"dropped,omitempty"`
	Crashed int `json:"crashed,omitempty"`
	// Instance is the 1-based batch instance of a multiplexed entry.
	Instance int `json:"instance,omitempty"`
	// Detail carries free-form context (the retry error, the backoff, the
	// checkpoint progress counter).
	Detail string `json:"detail,omitempty"`
}

// Flight is a per-job flight recorder: a bounded ring buffer holding the
// last K entries recorded for one job, dumped in full into the job's
// NDJSON end event when the job fails, panics or exceeds its deadline — so
// a post-mortem has the job's final moments without a debugger or a trace
// file. Memory is bounded by construction (K entries, allocated up front);
// recording overwrites the oldest entry and never allocates. A nil *Flight
// is the disabled recorder: Record is a no-op and Dump returns nil, both
// allocation-free, mirroring the rest of the obs collectors.
type Flight struct {
	mu    sync.Mutex
	start time.Time
	buf   []FlightEntry
	next  int   // ring cursor: index of the next write
	total int64 // entries ever recorded
}

// NewFlight returns a flight recorder keeping the last k entries (k < 1 is
// floored to 1).
func NewFlight(k int) *Flight {
	if k < 1 {
		k = 1
	}
	return &Flight{start: time.Now(), buf: make([]FlightEntry, 0, k)}
}

// Record appends one entry, stamping TNS and evicting the oldest entry
// once the ring is full. Safe for concurrent use; no-op on a nil receiver.
func (f *Flight) Record(e FlightEntry) {
	if f == nil {
		return
	}
	f.mu.Lock()
	e.TNS = time.Since(f.start).Nanoseconds()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
		f.next = (f.next + 1) % cap(f.buf)
	}
	f.total++
	f.mu.Unlock()
}

// Dump returns the recorded entries in chronological order (a copy; the
// ring keeps recording). Nil on a nil receiver or an empty recorder.
func (f *Flight) Dump() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.buf) == 0 {
		return nil
	}
	out := make([]FlightEntry, 0, len(f.buf))
	if len(f.buf) == cap(f.buf) {
		out = append(out, f.buf[f.next:]...)
		out = append(out, f.buf[:f.next]...)
	} else {
		out = append(out, f.buf...)
	}
	return out
}

// Total returns the number of entries ever recorded (0 on a nil receiver);
// Total - len(Dump()) entries have been overwritten.
func (f *Flight) Total() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Cap returns the ring capacity (0 on a nil receiver).
func (f *Flight) Cap() int {
	if f == nil {
		return 0
	}
	return cap(f.buf)
}
