package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/slo"
)

// traceBuf is a mutex-guarded sink for the JSONL trace recorder.
type traceBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *traceBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *traceBuf) events(t *testing.T) []obs.Event {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	var events []obs.Event
	for _, line := range bytes.Split(bytes.TrimSpace(b.buf.Bytes()), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		events = append(events, e)
	}
	return events
}

// TestTraceIDMintedAtAdmission: every job gets a trace ID at submit, the
// view and the event stream carry it, and the scheduler emits queue_wait
// and attempt spans tagged with it on the JSONL trace stream.
func TestTraceIDMintedAtAdmission(t *testing.T) {
	var sink traceBuf
	rec := obs.NewRecorder(&sink)
	r := newStubRunner()
	s := New(Config{QueueCap: 4, MaxInFlight: 1, Trace: rec, Runner: r.run})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(j.TraceID) != 16 {
		t.Fatalf("TraceID = %q, want 16 hex chars", j.TraceID)
	}
	if v := j.View(); v.TraceID != j.TraceID {
		t.Fatalf("view trace_id = %q, want %q", v.TraceID, j.TraceID)
	}
	waitStarted(t, r)
	r.release <- struct{}{}
	waitState(t, j, StateDone)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	events, _, _ := j.EventsSince(0)
	if first := events[0]; first.Kind != "queued" || first.Trace != j.TraceID {
		t.Fatalf("queued event = %+v, want trace %q", first, j.TraceID)
	}
	end := events[len(events)-1]
	if end.Kind != "end" || end.Trace != j.TraceID {
		t.Fatalf("end event = %+v, want trace %q", end, j.TraceID)
	}
	if end.QueueMS < 0 || end.RunMS < 0 {
		t.Fatalf("end event latency breakdown = queue %dms run %dms", end.QueueMS, end.RunMS)
	}
	if len(end.Flight) != 0 {
		t.Fatalf("done job should not dump its flight recorder: %+v", end.Flight)
	}

	phases := map[string]obs.Event{}
	for _, e := range sink.events(t) {
		if e.Kind == "span" && e.Trace == j.TraceID {
			phases[e.Phase] = e
		}
	}
	for _, phase := range []string{"queue_wait", "attempt"} {
		e, ok := phases[phase]
		if !ok {
			t.Fatalf("no %q span for trace %q in %v", phase, j.TraceID, phases)
		}
		if e.Job != j.ID || e.Span == "" || e.DurNS < 0 {
			t.Fatalf("%q span = %+v", phase, e)
		}
	}
	if phases["attempt"].Attempt != 1 {
		t.Fatalf("attempt span attempt = %d, want 1", phases["attempt"].Attempt)
	}
}

// TestTraceSpansRealRunner: a real (mtseq) job produces the full span
// cascade — queue_wait, attempt, build_instance, run — all sharing the
// job's trace, with build_instance and run parented under attempt, and the
// runtime's trace-tagged run events in between.
func TestTraceSpansRealRunner(t *testing.T) {
	var sink traceBuf
	rec := obs.NewRecorder(&sink)
	s := New(Config{QueueCap: 4, MaxInFlight: 1, Trace: rec})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(JobSpec{Family: FamilySinkless, N: 48, Margin: 0.9, Algorithm: AlgMTSeq, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	spans := map[string]obs.Event{}
	tagged := 0
	for _, e := range sink.events(t) {
		if e.Trace != j.TraceID {
			continue
		}
		tagged++
		if e.Kind == "span" {
			spans[e.Phase] = e
		}
	}
	for _, phase := range []string{"queue_wait", "attempt", "build_instance", "run"} {
		if _, ok := spans[phase]; !ok {
			t.Fatalf("missing %q span; spans seen: %v", phase, spans)
		}
	}
	att := spans["attempt"]
	if spans["build_instance"].Parent != att.Span {
		t.Errorf("build_instance parent = %q, want attempt span %q", spans["build_instance"].Parent, att.Span)
	}
	if spans["run"].Parent != att.Span {
		t.Errorf("run span parent = %q, want attempt span %q", spans["run"].Parent, att.Span)
	}
	// The runtime's own events (mt_iteration for mtseq) inherit the trace
	// and sit under the run span.
	sawIteration := false
	for _, e := range sink.events(t) {
		if e.Kind == "mt_iteration" && e.Trace == j.TraceID {
			sawIteration = true
			if e.Parent != spans["run"].Span {
				t.Errorf("mt_iteration parent = %q, want run span %q", e.Parent, spans["run"].Span)
			}
			if e.ScanNS <= 0 {
				t.Errorf("mt_iteration scan_ns = %d, want > 0", e.ScanNS)
			}
		}
	}
	if !sawIteration {
		t.Errorf("no trace-tagged mt_iteration events; %d events carried the trace", tagged)
	}
}

// TestFlightDumpOnFailure: a failing job's end event carries the flight
// recorder — the last rounds, the retry decisions — while a succeeding job
// keeps its stream lean.
func TestFlightDumpOnFailure(t *testing.T) {
	fail := func(ctx context.Context, js JobSpec, att Attempt, emit func(Event)) (*Summary, error) {
		for round := 1; round <= 3; round++ {
			emit(Event{Kind: "round", Round: round, Steps: round})
		}
		return nil, errors.New("boom")
	}
	s := New(Config{QueueCap: 4, MaxInFlight: 1, Runner: fail})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(JobSpec{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)

	events, _, _ := j.EventsSince(0)
	end := events[len(events)-1]
	if end.Kind != "end" || end.State != StateFailed {
		t.Fatalf("end event = %+v", end)
	}
	if len(end.Flight) == 0 {
		t.Fatal("failed job end event carries no flight dump")
	}
	if end.FlightTotal < int64(len(end.Flight)) {
		t.Fatalf("flight_total %d < dumped %d", end.FlightTotal, len(end.Flight))
	}
	kinds := map[string]int{}
	var lastTNS int64 = -1
	for _, fe := range end.Flight {
		kinds[fe.Kind]++
		if fe.TNS < lastTNS {
			t.Fatalf("flight dump not chronological: %+v", end.Flight)
		}
		lastTNS = fe.TNS
	}
	if kinds["round"] < 6 { // 3 rounds × 2 attempts
		t.Errorf("flight rounds = %d, want ≥ 6 across both attempts; kinds %v", kinds["round"], kinds)
	}
	if kinds["retry"] != 1 {
		t.Errorf("flight retry entries = %d, want 1; kinds %v", kinds["retry"], kinds)
	}
	for _, fe := range end.Flight {
		if fe.Kind == "retry" && fe.Detail == "" {
			t.Errorf("retry flight entry lacks detail: %+v", fe)
		}
	}
}

// TestFlightRingBoundsEndEvent: a job that streams far more events than the
// ring keeps still dumps at most the ring capacity, with the total
// reflecting everything recorded.
func TestFlightRingBoundsEndEvent(t *testing.T) {
	noisy := func(ctx context.Context, js JobSpec, att Attempt, emit func(Event)) (*Summary, error) {
		for round := 1; round <= flightRing*4; round++ {
			emit(Event{Kind: "round", Round: round})
		}
		return nil, errors.New("boom")
	}
	s := New(Config{QueueCap: 4, MaxInFlight: 1, Runner: noisy})
	defer s.Shutdown(context.Background())

	j, _ := s.Submit(JobSpec{})
	waitState(t, j, StateFailed)
	events, _, _ := j.EventsSince(0)
	end := events[len(events)-1]
	if len(end.Flight) > flightRing {
		t.Fatalf("flight dump = %d entries, ring is %d", len(end.Flight), flightRing)
	}
	if end.FlightTotal < flightRing*4 {
		t.Fatalf("flight_total = %d, want ≥ %d", end.FlightTotal, flightRing*4)
	}
	// The dump holds the freshest entries: the last round must be present.
	last := end.Flight[len(end.Flight)-1]
	if last.Kind != "round" || last.Round != flightRing*4 {
		t.Fatalf("freshest flight entry = %+v, want round %d", last, flightRing*4)
	}
}

// sloEngineTripped returns an engine in fast burn whose run_latency p99 is
// the overflow bucket (+Inf > any deadline).
func sloEngineTripped(t *testing.T) *slo.Engine {
	t.Helper()
	eng := slo.NewEngine(slo.Config{
		Objectives: []slo.Objective{
			{Name: SLORunLatency, Kind: slo.Latency, Target: 0.9, Threshold: 0.1},
			{Name: SLOErrorRate, Kind: slo.Ratio, Target: 0.9},
		},
		ShortWindow: 10 * time.Second,
		LongWindow:  time.Minute,
		BurnFactor:  2,
	})
	for i := 0; i < 50; i++ {
		eng.Observe(SLORunLatency, 30, fmt.Sprintf("%016x", i))
	}
	if !eng.FastBurn() {
		t.Fatal("engine should be in fast burn after 50 bad observations")
	}
	return eng
}

// TestShedUnderFastBurn: with the SLO engine in fast burn, a job whose
// deadline cannot meet the predicted p99 is refused with ErrShed and
// counted; jobs without deadlines are still admitted.
func TestShedUnderFastBurn(t *testing.T) {
	reg := obs.NewRegistry()
	eng := sloEngineTripped(t)
	r := newStubRunner()
	s := New(Config{QueueCap: 8, MaxInFlight: 1, Metrics: reg, SLO: eng, Runner: r.run})
	defer s.Shutdown(context.Background())

	if _, err := s.Submit(JobSpec{TimeoutMS: 50}); !errors.Is(err, ErrShed) {
		t.Fatalf("deadline'd submit under fast burn: err = %v, want ErrShed", err)
	}
	if got := reg.Counter("service_admission_shed_total").Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	if got := reg.Counter("service_admission_rejects_total").Value(); got != 1 {
		t.Errorf("rejects counter = %d, want 1 (shed counts as reject)", got)
	}
	if got := reg.Gauge("service_slo_fast_burn").Value(); got != 1 {
		t.Errorf("fast burn gauge = %v, want 1", got)
	}

	// No deadline → nothing to protect → admitted even under fast burn.
	j, err := s.Submit(JobSpec{})
	if err != nil {
		t.Fatalf("deadline-less submit under fast burn: %v", err)
	}
	waitStarted(t, r)
	r.release <- struct{}{}
	waitState(t, j, StateDone)
}

// TestNoShedWhenHealthy: a healthy engine (or none at all) never sheds, and
// the scheduler feeds its observations back into the engine.
func TestNoShedWhenHealthy(t *testing.T) {
	eng := slo.NewEngine(slo.Config{
		Objectives: []slo.Objective{
			{Name: SLORunLatency, Kind: slo.Latency, Target: 0.9, Threshold: 10},
			{Name: SLOQueueWait, Kind: slo.Latency, Target: 0.9, Threshold: 10},
			{Name: SLOErrorRate, Kind: slo.Ratio, Target: 0.9},
		},
	})
	r := newStubRunner()
	s := New(Config{QueueCap: 8, MaxInFlight: 1, SLO: eng, Runner: r.run})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(JobSpec{TimeoutMS: 60_000})
	if err != nil {
		t.Fatalf("healthy submit: %v", err)
	}
	waitStarted(t, r)
	r.release <- struct{}{}
	waitState(t, j, StateDone)

	st := eng.Status()
	byName := map[string]slo.ObjectiveStatus{}
	for _, o := range st.Objectives {
		byName[o.Name] = o
	}
	if byName[SLORunLatency].Good+byName[SLORunLatency].Bad == 0 {
		t.Error("scheduler did not feed run_latency observations")
	}
	if byName[SLOQueueWait].Good+byName[SLOQueueWait].Bad == 0 {
		t.Error("scheduler did not feed queue_wait observations")
	}
	if byName[SLOErrorRate].Good == 0 {
		t.Error("scheduler did not feed error_rate outcome")
	}

	// No engine configured: the shed path is inert.
	s2 := New(Config{QueueCap: 2, MaxInFlight: 1, Runner: r.run})
	defer s2.Shutdown(context.Background())
	j2, err := s2.Submit(JobSpec{TimeoutMS: 1})
	if err != nil {
		t.Fatalf("submit without SLO engine: %v", err)
	}
	waitStarted(t, r)
	r.release <- struct{}{}
	waitState(t, j2, StateDone)
}
