package service

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// batchOf builds a batch JobSpec over the given sub-specs.
func batchOf(cache bool, subs ...JobSpec) JobSpec {
	return JobSpec{Cache: cache, Batch: subs}
}

// TestBatchMatchesSolo: every instance of a batch job reports exactly the
// counters the solo path produces for the same spec — the packed execution
// is observationally identical to one job per instance.
func TestBatchMatchesSolo(t *testing.T) {
	s := realService(t, obs.NewRegistry(), 0) // no cache: pure execution equality

	subs := []JobSpec{
		{Family: FamilySinkless, N: 16, Algorithm: AlgMTPar, Seed: 5},
		{Family: FamilySinkless, N: 24, Algorithm: AlgMTPar, Seed: 6},
		{Family: FamilySinkless, N: 16, Algorithm: AlgMTSeq, Seed: 7},
		{Family: FamilySinkless, N: 16, Algorithm: AlgSeq, Seed: 1},
		{Family: FamilyHyper, N: 18, Algorithm: AlgOneShot, Seed: 8},
		{Family: FamilySinkless, N: 12, Algorithm: AlgDist, Seed: 9}, // LOCAL: solo fallback inside the batch
	}
	solo := make([]*Summary, len(subs))
	for i, sub := range subs {
		solo[i] = runJob(t, s, sub)
	}

	sum := runJob(t, s, batchOf(false, subs...))
	if len(sum.Instances) != len(subs) {
		t.Fatalf("batch summary has %d instances, want %d", len(sum.Instances), len(subs))
	}
	for i, is := range sum.Instances {
		want := solo[i]
		if is.Err != "" {
			t.Fatalf("instance %d failed: %s", i, is.Err)
		}
		if is.Index != i+1 {
			t.Errorf("instance %d has index %d, want %d", i, is.Index, i+1)
		}
		if is.Satisfied != want.Satisfied || is.ViolatedEvents != want.ViolatedEvents ||
			is.Rounds != want.Rounds || is.Resamplings != want.Resamplings || is.VarsFixed != want.VarsFixed {
			t.Errorf("instance %d diverges from solo:\nbatch: %+v\nsolo:  sat=%v violated=%d rounds=%d res=%d fixed=%d",
				i, is, want.Satisfied, want.ViolatedEvents, want.Rounds, want.Resamplings, want.VarsFixed)
		}
	}
	if !sum.Satisfied {
		t.Error("batch aggregate not satisfied although every instance is")
	}
}

// TestBatchInBatchDedup: identical instances inside one batch solve once;
// the copies are served as cache hits of the leader's result.
func TestBatchInBatchDedup(t *testing.T) {
	reg := obs.NewRegistry()
	s := realService(t, reg, 8)

	sub := JobSpec{Family: FamilySinkless, N: 16, Algorithm: AlgMTPar, Seed: 3}
	sum := runJob(t, s, batchOf(true, sub, sub, sub))
	hits := 0
	for _, is := range sum.Instances {
		if is.Err != "" {
			t.Fatalf("instance %d failed: %s", is.Index, is.Err)
		}
		if is.CacheHit {
			hits++
		}
		if is.Satisfied != sum.Instances[0].Satisfied || is.Rounds != sum.Instances[0].Rounds ||
			is.Resamplings != sum.Instances[0].Resamplings {
			t.Errorf("deduplicated instance %d differs from the leader: %+v vs %+v", is.Index, is, sum.Instances[0])
		}
	}
	if hits != 2 {
		t.Fatalf("%d of 3 identical instances were dedup hits, want 2", hits)
	}
	if got := reg.Counter("batch_instances_total").Value(); got != 1 {
		t.Errorf("batch_instances_total = %d, want 1 (only the leader packs)", got)
	}
}

// TestBatchSoloCacheInterchange: a cache entry written by a batch serves a
// later solo job bit-identically, and vice versa.
func TestBatchSoloCacheInterchange(t *testing.T) {
	s := realService(t, obs.NewRegistry(), 8)

	sub := JobSpec{Family: FamilySinkless, N: 20, Algorithm: AlgMTPar, Seed: 11}

	// Batch populates, solo hits.
	bsum := runJob(t, s, batchOf(true, sub))
	withCache := sub
	withCache.Cache = true
	warm := runJob(t, s, withCache)
	if !warm.CacheHit {
		t.Fatal("solo job missed the cache entry a batch wrote")
	}
	is := bsum.Instances[0]
	if warm.Satisfied != is.Satisfied || warm.ViolatedEvents != is.ViolatedEvents ||
		warm.Rounds != is.Rounds || warm.Resamplings != is.Resamplings {
		t.Fatalf("solo hit differs from the batch result:\nsolo:  %+v\nbatch: %+v", warm, is)
	}

	// Solo populates, batch hits.
	sub2 := JobSpec{Family: FamilySinkless, N: 20, Algorithm: AlgMTSeq, Seed: 12}
	withCache2 := sub2
	withCache2.Cache = true
	cold := runJob(t, s, withCache2)
	bsum2 := runJob(t, s, batchOf(true, sub2))
	is2 := bsum2.Instances[0]
	if !is2.CacheHit {
		t.Fatal("batch instance missed the cache entry a solo job wrote")
	}
	if is2.Satisfied != cold.Satisfied || is2.Resamplings != cold.Resamplings {
		t.Fatalf("batch hit differs from the solo result:\nbatch: %+v\nsolo:  %+v", is2, cold)
	}
}

// TestBatchEvents: the NDJSON stream of a batch job is multiplexed by the
// 1-based instance id — one instance_end per instance plus job-level round
// events.
func TestBatchEvents(t *testing.T) {
	s := realService(t, obs.NewRegistry(), 0)

	subs := []JobSpec{
		{Family: FamilySinkless, N: 16, Algorithm: AlgMTPar, Seed: 1},
		{Family: FamilySinkless, N: 16, Algorithm: AlgMTPar, Seed: 2},
	}
	j, err := s.Submit(batchOf(false, subs...))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	events, _, _ := j.EventsSince(0)

	ends := map[int]bool{}
	rounds := 0
	for _, e := range events {
		switch e.Kind {
		case "instance_end":
			if e.Instance < 1 || e.Instance > len(subs) {
				t.Fatalf("instance_end with out-of-range instance id %d", e.Instance)
			}
			if ends[e.Instance] {
				t.Fatalf("duplicate instance_end for instance %d", e.Instance)
			}
			ends[e.Instance] = true
		case "round":
			rounds++
		}
	}
	if len(ends) != len(subs) {
		t.Fatalf("saw instance_end for %d instances, want %d", len(ends), len(subs))
	}
	if rounds == 0 {
		t.Error("batch job emitted no round events")
	}
}

// TestBatchPartialFailure: a broken instance fails alone; the rest of the
// batch completes and the aggregate reports unsatisfied.
func TestBatchPartialFailure(t *testing.T) {
	s := realService(t, obs.NewRegistry(), 0)

	sum := runJob(t, s, batchOf(false,
		JobSpec{Family: FamilySinkless, N: 16, Algorithm: AlgMTPar, Seed: 1},
		JobSpec{Family: FamilyInline, Instance: []byte(`{"broken":`), Algorithm: AlgMTPar, Seed: 2},
	))
	good, bad := sum.Instances[0], sum.Instances[1]
	if good.Err != "" || !good.Satisfied {
		t.Fatalf("healthy instance affected by sibling failure: %+v", good)
	}
	if bad.Err == "" {
		t.Fatal("broken inline instance reported no error")
	}
	if sum.Satisfied {
		t.Error("aggregate satisfied although an instance failed")
	}
}

// TestBatchSpecValidation: nested batches and oversized batches are
// rejected at submit time.
func TestBatchSpecValidation(t *testing.T) {
	s := realService(t, obs.NewRegistry(), 0)

	nested := batchOf(false, batchOf(false, JobSpec{}))
	if _, err := s.Submit(nested); err == nil || !strings.Contains(err.Error(), "nested") {
		t.Fatalf("nested batch: err = %v, want nested-batch rejection", err)
	}

	big := JobSpec{Batch: make([]JobSpec, maxBatch+1)}
	if _, err := s.Submit(big); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

// TestBatchRequestJobSpec: the HTTP wire format stamps templates, applies
// seed policies, and validates count/seed agreement.
func TestBatchRequestJobSpec(t *testing.T) {
	tmpl := JobSpec{Family: FamilySinkless, N: 16, Algorithm: AlgMTPar, Seed: 10}

	js, err := BatchRequest{Template: tmpl, Count: 3, VarySeed: true, Cache: true}.JobSpec()
	if err != nil {
		t.Fatal(err)
	}
	if len(js.Batch) != 3 || !js.Cache {
		t.Fatalf("stamped batch = %+v", js)
	}
	for i, sub := range js.Batch {
		if sub.Seed != 10+uint64(i) {
			t.Errorf("instance %d seed = %d, want %d", i, sub.Seed, 10+uint64(i))
		}
	}

	js, err = BatchRequest{Template: tmpl, Seeds: []uint64{7, 8}}.JobSpec()
	if err != nil {
		t.Fatal(err)
	}
	if len(js.Batch) != 2 || js.Batch[0].Seed != 7 || js.Batch[1].Seed != 8 {
		t.Fatalf("seeded batch = %+v", js.Batch)
	}

	js, err = BatchRequest{Template: tmpl, Count: 4}.JobSpec()
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range js.Batch {
		if sub.Seed != 10 {
			t.Errorf("identical stamping changed the seed: %d", sub.Seed)
		}
	}

	if _, err := (BatchRequest{Template: tmpl}).JobSpec(); err == nil {
		t.Error("empty batch request accepted")
	}
	if _, err := (BatchRequest{Template: tmpl, Count: 2, Seeds: []uint64{1, 2, 3}}.JobSpec()); err == nil {
		t.Error("count/seeds mismatch accepted")
	}
}
