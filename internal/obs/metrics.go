// Package obs is the observability layer of the reproduction: a
// dependency-free, race-clean metrics and tracing subsystem shared by the
// sharded execution engine, the LOCAL runtime, the sequential and
// distributed fixers, the Moser-Tardos baselines and the experiment
// harness.
//
// The design has one hard requirement inherited from the golden-table
// determinism contract: observability must never change results, and the
// DISABLED path must cost nothing. Every collector is therefore nil-safe —
// methods on a nil *Counter, *Gauge, *Histogram, *Registry or *Recorder are
// no-ops that allocate zero bytes (asserted by TestDisabledPathZeroAllocs
// and BenchmarkObsDisabled) — so instrumented code simply holds possibly-nil
// pointers and calls through unconditionally, or guards whole blocks with a
// single nil check when the block would otherwise compute inputs (e.g.
// time.Now calls around a phase).
//
// Collectors are updated with atomics only; any number of goroutines may
// write a collector concurrently with any number of readers (exposition,
// snapshots), which the -race CI pass locks in.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a valid disabled counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 value. The zero value reads 0; a
// nil *Gauge is a valid disabled gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds delta to the gauge. No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger than the current value.
// No-op on a nil receiver.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SetMin lowers the gauge to v if v is smaller than the current value.
// A zero (never-written) gauge is treated as unset and adopts v, so min
// tracking does not need a +Inf sentinel. No-op on a nil receiver.
func (g *Gauge) SetMin(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if old != 0 && math.Float64frombits(old) <= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with cumulative Prometheus-style
// exposition. Buckets are defined by their upper bounds (ascending); an
// implicit +Inf bucket catches the rest. A nil *Histogram is a valid
// disabled histogram.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// newHistogram builds a histogram with the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample. No-op on a nil receiver.
//
// The sum is added before the bucket so that a concurrent snapshot (which
// reads buckets first, then the sum — see Registry.TakeSnapshot) never
// shows a count whose observations are missing from the sum; exposition
// invariants under concurrent observation are pinned by the scrape-parse
// round-trip test.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the configured upper bounds (nil on a nil receiver).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns a snapshot of the per-bucket counts, one entry per
// bound plus the final +Inf bucket (nil on a nil receiver). Counts are NOT
// cumulative; exposition cumulates them.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// ExpBuckets returns n exponentially growing upper bounds starting at start
// with the given factor — the standard shape for duration and size
// histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets are the default bounds for phase-timing histograms, in
// seconds: 1µs … ~4s, doubling.
var DurationBuckets = ExpBuckets(1e-6, 2, 23)

// CountBuckets are the default bounds for per-round count histograms
// (messages, steps, halts): 1 … ~2M, quadrupling.
var CountBuckets = ExpBuckets(1, 4, 11)
