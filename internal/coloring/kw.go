package coloring

// This file implements the Kuhn-Wattenhofer colour-reduction schedule used
// by the distributed machines to shrink the O(Δ²)-colour palette left by
// the Linial phase down to the target palette in O(Δ · log(K/Δ)) rounds —
// instead of the naive one-class-per-round reduction's O(K) rounds.
//
// One halving iteration partitions the palette [K] into blocks of 2·tgt
// consecutive colours (tgt ≥ Δ+1). Within every block, the upper tgt colour
// classes are reduced one class per round into the block's lower tgt
// colours: a recolouring node has at most Δ < tgt neighbours, and only
// same-block neighbours can occupy the block's lower colours, so a free
// colour always exists, and no two adjacent nodes recolour in the same
// round (they would share a colour class). After tgt rounds every colour
// sits in the lower half of its block and the palette is relabelled to
// ⌈K/(2·tgt)⌉·tgt colours. Iterating halves the palette until it reaches
// tgt.

// kwSchedule returns the palette size before each halving iteration, ending
// when the palette is at most tgt. Every node computes the same schedule
// from (k0, tgt), which keeps the machines synchronized for free.
func kwSchedule(k, tgt int) []int {
	var out []int
	for k > tgt {
		out = append(out, k)
		blocks := (k + 2*tgt - 1) / (2 * tgt)
		k = blocks * tgt
	}
	return out
}

// kwRounds is the total number of communication rounds of the whole
// reduction: tgt rounds per halving iteration.
func kwRounds(k, tgt int) int {
	return len(kwSchedule(k, tgt)) * tgt
}

// kwStep executes one node's side of round j (0 ≤ j < tgt) of a halving
// iteration: given the node's colour and its neighbours' colours (same
// labelling), it returns the node's colour after the round, applying the
// end-of-iteration relabelling when j == tgt-1. It returns ok=false if no
// free colour exists (impossible when the degree bound of the schedule
// holds).
func kwStep(tgt, j, color int, neighborColors []int) (int, bool) {
	blockSize := 2 * tgt
	b := color / blockSize
	off := color - b*blockSize
	if off == tgt+j {
		// My class is being reduced this round: take the smallest free
		// offset in [0, tgt) of my block.
		used := make([]bool, tgt)
		for _, nc := range neighborColors {
			if nc/blockSize != b {
				continue
			}
			if noff := nc - b*blockSize; noff < tgt {
				used[noff] = true
			}
		}
		off = -1
		for o := 0; o < tgt; o++ {
			if !used[o] {
				off = o
				break
			}
		}
		if off < 0 {
			return 0, false
		}
	}
	if j == tgt-1 {
		// End of the iteration: every offset is now below tgt; compact the
		// palette to blocks of size tgt.
		return b*tgt + off, true
	}
	return b*blockSize + off, true
}
