package exp

import (
	"fmt"

	"repro/internal/lb"
	"repro/internal/prng"
)

// T11LowerBound computes exact finite certificates for the lower-bound side
// of the threshold: for each radius t and ID space m it decides — by 2-SAT
// over all radius-t edge-view orientation rules — whether ANY deterministic
// t-round algorithm solves sinkless orientation (the problem sitting
// exactly at p = 2^-d) on all cycles with distinct IDs from [m].
//
// The measured frontier is maximally sharp: a rule exists only when the
// whole cycle fits inside the view window (m = 2t+3); a single extra
// identifier makes the formula unsatisfiable. Sinkless orientation on a
// cycle is globally constrained (zero sinks forces a consistent direction),
// so no local algorithm survives any ID slack — while the slack-relaxed
// below-threshold variant is solved by the radius-0 rule "orient nothing".
func T11LowerBound(seed uint64, sz Sizes) (*Table, error) {
	t := &Table{
		ID:    "T11",
		Title: "Finite lower-bound certificates - radius-t edge-view algorithms for sinkless orientation on cycles",
		Note: "Each row is an EXACT decision (2-SAT over all radius-t orientation rules). 'solvable' holds only " +
			"when the view window covers the whole cycle (m = 2t+3); one extra identifier gives a " +
			"machine-checked impossibility certificate. The below-threshold slack relaxation is radius-0 " +
			"solvable ('orient nothing') - the sharp threshold in finite form. Extracted rules are validated " +
			"on random cycles ('rule check').",
		Header: []string{"radius t", "ID space m", "2-SAT vars", "clauses", "solvable", "rule check"},
	}
	r := prng.New(seed)
	type probe struct{ radius, m int }
	probes := []probe{
		{1, 5}, {1, 6}, {1, 7}, {1, 8},
		{2, 7}, {2, 8}, {2, 9},
	}
	if sz.Scale == 0 || sz.Scale >= 1 {
		// The radius-3 decisions (up to 1.8M variables / 5.4M clauses)
		// take a few seconds; run them at full scale only.
		probes = append(probes, probe{3, 9}, probe{3, 10})
	}
	for _, p := range probes {
		cert, err := lb.Decide(p.radius, p.m)
		if err != nil {
			return nil, err
		}
		check := "-"
		if cert.Solvable {
			// Validate the extracted rule on random full-ID cycles.
			ids := make([]int, p.m)
			for i := range ids {
				ids[i] = i
			}
			trials := sz.trials(100)
			for i := 0; i < trials; i++ {
				r.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
				sinks, err := cert.CheckCycle(ids)
				if err != nil {
					return nil, err
				}
				if len(sinks) != 0 {
					return t, fmt.Errorf("exp: T11 (t=%d, m=%d): extracted rule leaves sinks %v on %v",
						p.radius, p.m, sinks, ids)
				}
			}
			check = fmt.Sprintf("ok on %d cycles", trials)
		}
		t.AddRow(p.radius, p.m, cert.Vars, cert.Clauses, cert.Solvable, check)
		wantSolvable := p.m == 2*p.radius+3
		if cert.Solvable != wantSolvable {
			return t, fmt.Errorf("exp: T11 (t=%d, m=%d): solvable=%v, expected %v",
				p.radius, p.m, cert.Solvable, wantSolvable)
		}
	}
	return t, nil
}
