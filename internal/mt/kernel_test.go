package mt

import (
	"sort"
	"testing"

	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/prng"
)

// The kernel differential layer for the resamplers: the generic path (the
// original per-event violatedEvents walk over model.Assignment) is the
// oracle, and every run through the compiled CSR/bitset kernels must
// reproduce it bit for bit — same resampling counts, same rounds, same
// final assignment — because both paths consume the identical PRNG stream.
// kernel.SetEnabled is the process-wide switch that forces the generic
// path; each instance is rebuilt per mode so the For cache never leaks a
// compiled kernel into a disabled run.

// withKernel runs fn twice, first with kernels enabled, then disabled, and
// returns the two results for comparison. The previous enabled state is
// restored afterwards.
func withKernel(t *testing.T, fn func(t *testing.T) *Result) (on, off *Result) {
	t.Helper()
	prev := kernel.SetEnabled(true)
	defer kernel.SetEnabled(prev)
	on = fn(t)
	kernel.SetEnabled(false)
	off = fn(t)
	return on, off
}

// TestSequentialKernelMatchesGeneric pins the sequential resampler:
// kernel-on and kernel-off runs from the same seed are bit-identical on
// every differential instance family.
func TestSequentialKernelMatchesGeneric(t *testing.T) {
	for name, inst := range diffInstances(t) {
		inst := inst
		t.Run(name, func(t *testing.T) {
			on, off := withKernel(t, func(t *testing.T) *Result {
				res, err := Sequential(inst, prng.New(11), 500000)
				if err != nil {
					t.Fatal(err)
				}
				return res
			})
			assertSameRun(t, "sequential kernel-vs-generic", on, off)
		})
	}
}

// TestParallelKernelMatchesGeneric pins the parallel-rounds resampler,
// whose kernel path also swaps in the bitset local-minimum selection
// (HasLowerViolatedNeighbor) for the generic neighbor-map walk.
func TestParallelKernelMatchesGeneric(t *testing.T) {
	for name, inst := range diffInstances(t) {
		inst := inst
		t.Run(name, func(t *testing.T) {
			on, off := withKernel(t, func(t *testing.T) *Result {
				res, err := Parallel(inst, prng.New(13), 0)
				if err != nil {
					t.Fatal(err)
				}
				return res
			})
			assertSameRun(t, "parallel kernel-vs-generic", on, off)
		})
	}
}

// TestOneShotKernelMatchesGeneric pins the single-sample scan and the
// failure-rate estimator built on it.
func TestOneShotKernelMatchesGeneric(t *testing.T) {
	for name, inst := range diffInstances(t) {
		inst := inst
		t.Run(name, func(t *testing.T) {
			type shot struct {
				violated []int
				fail     float64
				mean     float64
			}
			run := func(t *testing.T) shot {
				a, n, err := OneShot(inst, prng.New(17))
				if err != nil {
					t.Fatal(err)
				}
				if !a.Complete() {
					t.Fatal("OneShot returned a partial assignment")
				}
				var violated []int
				for e := 0; e < inst.NumEvents(); e++ {
					bad, err := inst.Violated(e, a)
					if err != nil {
						t.Fatal(err)
					}
					if bad {
						violated = append(violated, e)
					}
				}
				if n != len(violated) {
					t.Fatalf("OneShot count %d but %d events violated", n, len(violated))
				}
				fail, mean, err := EstimateFailureRate(inst, prng.New(19), 64)
				if err != nil {
					t.Fatal(err)
				}
				return shot{violated, fail, mean}
			}
			var on, off shot
			prev := kernel.SetEnabled(true)
			defer kernel.SetEnabled(prev)
			on = run(t)
			kernel.SetEnabled(false)
			off = run(t)
			if !sort.IntsAreSorted(on.violated) {
				t.Error("kernel violated list not ascending")
			}
			if len(on.violated) != len(off.violated) {
				t.Fatalf("violated counts diverge: %d vs %d", len(on.violated), len(off.violated))
			}
			for i := range on.violated {
				if on.violated[i] != off.violated[i] {
					t.Fatalf("violated[%d]: %d vs %d", i, on.violated[i], off.violated[i])
				}
			}
			if on.fail != off.fail || on.mean != off.mean {
				t.Fatalf("EstimateFailureRate diverges: (%v,%v) vs (%v,%v)",
					on.fail, on.mean, off.fail, off.mean)
			}
		})
	}
}

// TestKernelCrossPathCheckpointResume is the checkpoint-interchange
// invariant: a checkpoint captured on the generic path must resume
// bit-identically on the kernel path, and vice versa, for both resamplers.
// This holds because the checkpoint payload is the plain value vector plus
// the PRNG state — the packed kernel assignment is a mirror, rebuilt from
// the restored model.Assignment at resume time.
func TestKernelCrossPathCheckpointResume(t *testing.T) {
	insts := diffInstances(t)
	prev := kernel.SetEnabled(true)
	defer kernel.SetEnabled(prev)

	type runner struct {
		name string
		run  func(o Observer) (*Result, error)
	}
	for name, inst := range insts {
		inst := inst
		runners := []runner{
			{"sequential", func(o Observer) (*Result, error) {
				return SequentialObs(inst, prng.New(23), 500000, o)
			}},
			{"parallel", func(o Observer) (*Result, error) {
				return ParallelObs(inst, prng.New(23), 0, o)
			}},
		}
		for _, rn := range runners {
			rn := rn
			t.Run(name+"/"+rn.name, func(t *testing.T) {
				capture := func(enabled bool) (*Result, []*fault.Checkpoint) {
					kernel.SetEnabled(enabled)
					var cps []*fault.Checkpoint
					res, err := rn.run(Observer{
						CheckpointEvery: 2,
						OnCheckpoint:    func(cp *fault.Checkpoint) { cps = append(cps, cp) },
					})
					if err != nil {
						t.Fatal(err)
					}
					return res, cps
				}
				resume := func(enabled bool, cp *fault.Checkpoint) *Result {
					kernel.SetEnabled(enabled)
					res, err := rn.run(Observer{Resume: cp})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}

				baseline, genCps := capture(false)
				_, kerCps := capture(true)
				if len(genCps) == 0 || len(kerCps) == 0 {
					t.Skip("run finished before the first checkpoint — nothing to resume")
				}
				if len(genCps) != len(kerCps) {
					t.Fatalf("checkpoint counts diverge: generic %d, kernel %d", len(genCps), len(kerCps))
				}

				// Generic-path checkpoint resumed on the kernel path...
				got := resume(true, genCps[len(genCps)/2])
				assertSameRun(t, rn.name+" generic->kernel resume", got, baseline)
				// ...and a kernel-path checkpoint resumed on the generic path.
				got = resume(false, kerCps[len(kerCps)/2])
				assertSameRun(t, rn.name+" kernel->generic resume", got, baseline)
			})
		}
	}
}
