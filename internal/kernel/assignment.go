package kernel

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/prng"
)

// Assignment is the bit-packed counterpart of model.Assignment: variable
// values live valBits apart inside 64-bit words (valBits is a power of two,
// so a value never straddles a word), and the fixed mask is a plain bitset.
// The semantics mirror model.Assignment exactly — Fix panics on re-fixing,
// Value panics on unfixed reads — so the two representations can be
// round-tripped and differentially tested against each other. One addition,
// Set, overwrites a fixed variable in place; it is the resampling write the
// Moser-Tardos hot loop needs.
type Assignment struct {
	c        *Compiled
	words    []uint64 // packed values
	fixed    []uint64 // fixed bitset, one bit per variable
	numFixed int
}

// NewAssignment returns an empty (nothing fixed) packed assignment.
func (c *Compiled) NewAssignment() *Assignment {
	return &Assignment{
		c:     c,
		words: make([]uint64, c.valWords),
		fixed: make([]uint64, (c.numVars+63)/64),
	}
}

// Reset unfixes every variable.
func (a *Assignment) Reset() {
	for i := range a.words {
		a.words[i] = 0
	}
	for i := range a.fixed {
		a.fixed[i] = 0
	}
	a.numFixed = 0
}

// value reads the packed value of variable id without a fixed check; the
// scan paths use it after verifying Complete once.
func (a *Assignment) value(id int) int {
	w := a.words[uint(id)>>a.c.vpwShift]
	return int(w >> ((uint(id) & a.c.vpwMask) << a.c.valShift) & a.c.valMask)
}

// setValue writes the packed value of variable id.
func (a *Assignment) setValue(id, value int) {
	wi := uint(id) >> a.c.vpwShift
	sh := (uint(id) & a.c.vpwMask) << a.c.valShift
	a.words[wi] = a.words[wi]&^(a.c.valMask<<sh) | uint64(value)<<sh
}

// Fixed reports whether variable id has been fixed.
func (a *Assignment) Fixed(id int) bool {
	return a.fixed[uint(id)>>6]>>(uint(id)&63)&1 == 1
}

// Value returns the value fixed for variable id, panicking if it is not
// fixed (reading an unfixed variable is always a bug, as in model).
func (a *Assignment) Value(id int) int {
	if !a.Fixed(id) {
		panic(fmt.Sprintf("kernel: Value of unfixed variable %d", id))
	}
	return a.value(id)
}

// checkValue panics when value does not fit the packed width. The packed
// representation is stricter than model.Assignment here: an oversized value
// would be silently truncated, so it is rejected loudly instead.
func (a *Assignment) checkValue(id, value int) {
	if value < 0 || uint64(value) > a.c.valMask {
		panic(fmt.Sprintf("kernel: value %d of variable %d outside the %d-bit packed range", value, id, a.c.valBits))
	}
}

// Fix fixes variable id to the given value index, panicking if it is
// already fixed (mirroring model.Assignment.Fix).
func (a *Assignment) Fix(id, value int) {
	if a.Fixed(id) {
		panic(fmt.Sprintf("kernel: variable %d fixed twice", id))
	}
	a.checkValue(id, value)
	a.fixed[uint(id)>>6] |= 1 << (uint(id) & 63)
	a.setValue(id, value)
	a.numFixed++
}

// Unfix reverts a Fix, panicking if the variable is not fixed.
func (a *Assignment) Unfix(id int) {
	if !a.Fixed(id) {
		panic(fmt.Sprintf("kernel: Unfix of unfixed variable %d", id))
	}
	a.fixed[uint(id)>>6] &^= 1 << (uint(id) & 63)
	a.setValue(id, 0)
	a.numFixed--
}

// Set fixes variable id to value, overwriting the previous value if the
// variable is already fixed. It is the in-place resampling write.
func (a *Assignment) Set(id, value int) {
	a.checkValue(id, value)
	wi := uint(id) >> 6
	bit := uint64(1) << (uint(id) & 63)
	if a.fixed[wi]&bit == 0 {
		a.fixed[wi] |= bit
		a.numFixed++
	}
	a.setValue(id, value)
}

// NumFixed returns the number of fixed variables.
func (a *Assignment) NumFixed() int { return a.numFixed }

// Complete reports whether every variable is fixed.
func (a *Assignment) Complete() bool { return a.numFixed == a.c.numVars }

// Values returns a copy of the value vector and the fixed mask, in the same
// shape as model.Assignment.Values (unfixed entries read 0).
func (a *Assignment) Values() (values []int, fixed []bool) {
	values = make([]int, a.c.numVars)
	fixed = make([]bool, a.c.numVars)
	for id := 0; id < a.c.numVars; id++ {
		if a.Fixed(id) {
			fixed[id] = true
			values[id] = a.value(id)
		}
	}
	return values, fixed
}

// PackFrom overwrites a with the contents of the model assignment ma.
func (a *Assignment) PackFrom(ma *model.Assignment) {
	a.Reset()
	for id := 0; id < a.c.numVars; id++ {
		if ma.Fixed(id) {
			a.Fix(id, ma.Value(id))
		}
	}
}

// UnpackTo returns a fresh model.Assignment with the same fixed variables
// and values as a.
func (a *Assignment) UnpackTo() *model.Assignment {
	ma := model.NewAssignment(a.c.inst)
	for id := 0; id < a.c.numVars; id++ {
		if a.Fixed(id) {
			ma.Fix(id, a.value(id))
		}
	}
	return ma
}

// SampleVar draws a value for variable v from its distribution using r,
// consuming exactly the same PRNG stream and returning exactly the same
// value as dist.Distribution.Sample: one Float64 draw, then a linear scan
// of the (verbatim-copied) cumulative sums.
func (c *Compiled) SampleVar(v int, r *prng.Rand) int {
	u := r.Float64()
	off, size := c.distFor(int32(v))
	for i := int32(0); i < size; i++ {
		if u < c.cum[off+i] {
			return int(i)
		}
	}
	return int(size) - 1
}
