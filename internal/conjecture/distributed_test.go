package conjecture

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/local"
	"repro/internal/prng"
)

func TestFixDistributedRRank4(t *testing.T) {
	// The distributed side of Conjecture 1.5: rank-4 instances solved via
	// distance-2 colour classes and the numeric representability search.
	r := prng.New(21)
	h, err := hypergraph.RandomRegularUniform(24, 2, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinklessUniform(h, 4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if ok, margin := s.Instance.ExponentialCriterion(); !ok {
		t.Fatalf("criterion fails: %v", margin)
	}
	res, err := FixDistributedR(s.Instance, local.Options{IDSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolatedEvents != 0 {
		t.Fatalf("%d violations", res.ViolatedEvents)
	}
	if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
		t.Fatalf("sinks %v", sinks)
	}
	if res.TotalRounds != res.ColoringRounds+res.FixingRounds {
		t.Fatalf("round accounting inconsistent: %+v", res)
	}
	d := s.Instance.D()
	if res.Classes > d*d+1 {
		t.Fatalf("%d classes exceed d²+1 = %d", res.Classes, d*d+1)
	}
}

func TestFixDistributedRMatchesRank3Machinery(t *testing.T) {
	// On a rank-3 instance, the generalized distributed fixer must succeed
	// just like the proven Corollary 1.4 machine.
	r := prng.New(23)
	h, err := hypergraph.RandomRegularRank3(15, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinkless(h, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FixDistributedR(s.Instance, local.Options{IDSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolatedEvents != 0 {
		t.Fatalf("%d violations", res.ViolatedEvents)
	}
}

func TestFixDistributedRRank2(t *testing.T) {
	s, err := apps.NewSinklessBiasedCycle(12, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FixDistributedR(s.Instance, local.Options{IDSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolatedEvents != 0 {
		t.Fatalf("%d violations", res.ViolatedEvents)
	}
	if sinks := s.Sinks(res.Assignment); len(sinks) != 0 {
		t.Fatalf("sinks %v", sinks)
	}
}

func TestFixDistributedRDeterministic(t *testing.T) {
	r := prng.New(29)
	h, err := hypergraph.RandomRegularUniform(16, 2, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.NewHyperSinklessUniform(h, 4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []int {
		res, err := FixDistributedR(s.Instance, local.Options{IDSeed: 99})
		if err != nil {
			t.Fatal(err)
		}
		vals, _ := res.Assignment.Values()
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("distributed rank-r run not deterministic for fixed seed")
		}
	}
}

func TestFixDistributedRWithPrivateCoins(t *testing.T) {
	// Rank-1 variables are fixed in round 1 in parallel; combine them with
	// rank-2 variables via the plain sinkless family on a torus.
	s, err := apps.NewSinkless(graph.Torus(4, 4), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FixDistributedR(s.Instance, local.Options{IDSeed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolatedEvents != 0 {
		t.Fatalf("%d violations", res.ViolatedEvents)
	}
}

func BenchmarkFixDistributedRRank4(b *testing.B) {
	r := prng.New(1)
	h, err := hypergraph.RandomRegularUniform(16, 2, 4, r)
	if err != nil {
		b.Fatal(err)
	}
	s, err := apps.NewHyperSinklessUniform(h, 4, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FixDistributedR(s.Instance, local.Options{IDSeed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
