package batch

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/prng"
)

// Default per-instance budgets, mirroring internal/mt.
const (
	defaultMaxRounds      = 100_000
	defaultMaxResamplings = 1_000_000
)

// Options parameterizes the packed runners. The zero value runs on the
// shared engine pool with the library-default budgets.
type Options struct {
	// Ctx cancels the run; checked once per packed round. Nil means
	// context.Background(). On cancellation the runners return the partial
	// per-instance results together with an error wrapping ctx.Err().
	Ctx context.Context
	// Pool executes the packed scans; nil selects engine.Shared(). Results
	// are bit-identical for every worker count (the scans are read-only
	// and index-addressed).
	Pool *engine.Pool
	// MaxRounds caps each instance's parallel resampling rounds
	// (RunParallelMT); 0 means 100000, matching mt.Parallel.
	MaxRounds int
	// MaxResamplings caps each instance's sequential resamplings
	// (RunSequentialMT); 0 means 1000000, matching mt.Sequential.
	MaxResamplings int
	// OnRound, when non-nil, observes every packed round with aggregate
	// deterministic stats: Steps is the total resamplings of the round,
	// Active the total violated events seen by the round's scan, Halted the
	// instances that finished this round. Worker-count independent.
	OnRound func(engine.RoundStats)
	// Metrics, when non-nil, receives the batch_* metric families. All obs
	// instruments are nil-safe, so a nil registry disables them at zero
	// cost.
	Metrics *obs.Registry
	// Core configures the deterministic fixer for RunFixSequential.
	// Checkpoint and Trace fields must be left unset (instances run
	// concurrently and would interleave on them).
	Core core.Options
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) pool() *engine.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return engine.Shared()
}

// Result is the unpacked outcome of one instance of a packed run. For the
// randomized runners it is bit-identical (assignment included) to the solo
// run of the same algorithm with the same seed.
type Result struct {
	// Satisfied reports whether the final assignment avoids all bad events.
	Satisfied bool
	// ViolatedEvents is the number of violated events under the final
	// assignment (the count the terminating scan observed).
	ViolatedEvents int
	// Rounds counts the instance's own parallel rounds (RunParallelMT).
	Rounds int
	// Resamplings counts the instance's event resamplings.
	Resamplings int
	// VarsFixed counts fixed variables (RunFixSequential).
	VarsFixed int
	// Assignment is the final assignment (nil for RunFixSequential
	// failures before any assignment existed).
	Assignment *model.Assignment
	// Err is the instance's own failure, if any; other instances of the
	// batch are unaffected.
	Err error
}

// batchObs are the batch_* instruments.
type batchObs struct {
	runs      *obs.Counter
	instances *obs.Counter
	rounds    *obs.Counter
	active    *obs.Gauge
	size      *obs.Histogram
}

func newBatchObs(reg *obs.Registry) batchObs {
	return batchObs{
		runs:      reg.Counter("batch_runs_total"),
		instances: reg.Counter("batch_instances_total"),
		rounds:    reg.Counter("batch_rounds_total"),
		active:    reg.Gauge("batch_instances_active"),
		size:      reg.Histogram("batch_size", obs.CountBuckets),
	}
}

// sampleAll draws every variable of inst in identifier order, exactly like
// the solo resamplers, so a packed instance consumes its private RNG stream
// in the solo sequence.
func sampleAll(inst *model.Instance, r *prng.Rand) *model.Assignment {
	a := model.NewAssignment(inst)
	for vid := 0; vid < inst.NumVars(); vid++ {
		a.Fix(vid, inst.Var(vid).Dist.Sample(r))
	}
	return a
}

// resample redraws the scope of instance k's event id in scope order (solo
// order), keeping the packed kernel mirror (if any) in step.
func (st *packedState) resample(k, id int) {
	inst, a, r := st.p.Instance(k), st.asn[k], st.rngs[k]
	for _, vid := range inst.Event(id).Scope {
		a.Unfix(vid)
		v := inst.Var(vid).Dist.Sample(r)
		a.Fix(vid, v)
		if st.kas != nil {
			st.kas[k].Set(vid, v)
		}
	}
}

// packedState is the shared round-loop state of the randomized packed
// runners.
type packedState struct {
	p       *Packed
	pool    *engine.Pool
	results []Result
	rngs    []*prng.Rand
	asn     []*model.Assignment
	active  []bool
	nActive int
	// bad / errs are the index-addressed scan outputs over the global
	// event space; scanning writes them, unpacking reads them. They back
	// the generic scan only; the kernel scan uses the packed bitset below.
	bad  []bool
	errs []error
	obs  batchObs
	// Kernel state, used when EVERY packed instance compiles (nil slices
	// otherwise, and the batch runs the generic path): per-instance
	// compiled kernels and packed assignment mirrors, plus the violated
	// bitset over the packed WORD space — instance k owns words
	// [wordOff[k], wordOff[k+1]), one bit per local event. Scans shard over
	// word segments, so each worker writes whole words of one instance.
	kerns   []*kernel.Compiled
	kas     []*kernel.Assignment
	wordOff []int
	kbits   []uint64
}

func newPackedState(p *Packed, seeds []uint64, o Options) (*packedState, error) {
	if len(seeds) != p.Len() {
		return nil, fmt.Errorf("batch: %d seeds for %d instances", len(seeds), p.Len())
	}
	st := &packedState{
		p:       p,
		pool:    o.pool(),
		results: make([]Result, p.Len()),
		rngs:    make([]*prng.Rand, p.Len()),
		asn:     make([]*model.Assignment, p.Len()),
		active:  make([]bool, p.Len()),
		nActive: p.Len(),
		bad:     make([]bool, p.TotalEvents()),
		errs:    make([]error, p.TotalEvents()),
		obs:     newBatchObs(o.Metrics),
	}
	for k := 0; k < p.Len(); k++ {
		st.rngs[k] = prng.New(seeds[k])
		st.asn[k] = sampleAll(p.Instance(k), st.rngs[k])
		st.results[k].Assignment = st.asn[k]
		st.active[k] = true
	}
	if kerns := make([]*kernel.Compiled, p.Len()); p.Len() > 0 {
		ok := true
		for k := range kerns {
			if kerns[k] = kernel.For(p.Instance(k)); kerns[k] == nil {
				ok = false
				break
			}
		}
		if ok {
			st.kerns = kerns
			st.wordOff = make([]int, p.Len()+1)
			st.kas = make([]*kernel.Assignment, p.Len())
			for k, c := range kerns {
				st.wordOff[k+1] = st.wordOff[k] + c.EventWords()
				st.kas[k] = c.NewAssignment()
				st.kas[k].PackFrom(st.asn[k])
			}
			st.kbits = make([]uint64, st.wordOff[p.Len()])
		}
	}
	st.obs.runs.Inc()
	st.obs.instances.Add(int64(p.Len()))
	st.obs.size.Observe(float64(p.Len()))
	st.obs.active.Set(float64(st.nActive))
	return st, nil
}

// scan evaluates every event of every still-active instance under that
// instance's current assignment, in ONE sharded pass over the packed index
// space. Writes are index-addressed, so the scan is deterministic for
// every worker count.
func (st *packedState) scan() {
	if st.kerns != nil {
		st.pool.ForEachSegments(st.wordOff, func(k, lo, hi int) {
			if !st.active[k] {
				return
			}
			c, base := st.kerns[k], st.wordOff[k]
			var vals []int
			if c.HasGeneric() {
				vals = make([]int, c.MaxScope())
			}
			c.ScanWords(st.kas[k], lo-base, hi-base, st.kbits[base:st.wordOff[k+1]], vals)
		})
		return
	}
	off := st.p.EventOffsets()
	st.pool.ForEachSegments(off, func(k, lo, hi int) {
		if !st.active[k] {
			return
		}
		inst, a, base := st.p.Instance(k), st.asn[k], off[k]
		for g := lo; g < hi; g++ {
			st.bad[g], st.errs[g] = inst.Violated(g-base, a)
		}
	})
}

// violated collects instance k's violated local event ids (ascending, the
// solo order) from the last scan, or the first scan error.
func (st *packedState) violated(k int, buf []int) ([]int, error) {
	buf = buf[:0]
	if st.kerns != nil {
		base := st.wordOff[k]
		for wi := base; wi < st.wordOff[k+1]; wi++ {
			w := st.kbits[wi]
			eb := (wi - base) << 6
			for w != 0 {
				buf = append(buf, eb+bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
		return buf, nil
	}
	off := st.p.EventOffsets()
	for g := off[k]; g < off[k+1]; g++ {
		if st.errs[g] != nil {
			return nil, st.errs[g]
		}
		if st.bad[g] {
			buf = append(buf, g-off[k])
		}
	}
	return buf, nil
}

// finish deactivates instance k.
func (st *packedState) finish(k int) {
	st.active[k] = false
	st.nActive--
	st.obs.active.Set(float64(st.nActive))
}

// cancelAll finalizes every still-active instance with the partial state it
// reached, mirroring the solo runners' cancellation contract (assignment
// kept, Satisfied false).
func (st *packedState) cancelAll() {
	for k := range st.active {
		if st.active[k] {
			st.finish(k)
		}
	}
}

// RunParallelMT runs the parallel Moser-Tardos resampler on every packed
// instance, with one sharded violated-event scan per global round covering
// all still-active instances. Instance k draws from prng.New(seeds[k]) in
// the solo order, so its Result — assignment, rounds, resamplings — is
// bit-identical to mt.Parallel(inst, prng.New(seeds[k]), opts.MaxRounds).
// Instances terminate individually: once satisfied (or out of round
// budget) they leave the scan; the run ends when none are active.
func RunParallelMT(p *Packed, seeds []uint64, o Options) ([]Result, error) {
	st, err := newPackedState(p, seeds, o)
	if err != nil {
		return nil, err
	}
	maxRounds := o.MaxRounds
	if maxRounds == 0 {
		maxRounds = defaultMaxRounds
	}
	ctx := o.ctx()
	var buf []int
	for globalRound := 1; st.nActive > 0; globalRound++ {
		if cerr := ctx.Err(); cerr != nil {
			st.cancelAll()
			return st.results, fmt.Errorf("batch: parallel resampler cancelled: %w", cerr)
		}
		st.scan()
		st.obs.rounds.Inc()
		steps, violatedTotal, halted := 0, 0, 0
		for k := 0; k < p.Len(); k++ {
			if !st.active[k] {
				continue
			}
			res := &st.results[k]
			var verr error
			buf, verr = st.violated(k, buf)
			if verr != nil {
				res.Err = verr
				st.finish(k)
				halted++
				continue
			}
			violatedTotal += len(buf)
			switch {
			case len(buf) == 0:
				res.Satisfied = true
				st.finish(k)
				halted++
			case res.Rounds == maxRounds:
				res.ViolatedEvents = len(buf)
				st.finish(k)
				halted++
			default:
				res.Rounds++
				if st.kerns != nil {
					c, vb := st.kerns[k], st.kbits[st.wordOff[k]:st.wordOff[k+1]]
					for _, id := range buf {
						if !c.HasLowerViolatedNeighbor(vb, id) {
							st.resample(k, id)
							res.Resamplings++
							steps++
						}
					}
					break
				}
				g := p.Instance(k).DependencyGraph()
				isViolated := make(map[int]bool, len(buf))
				for _, id := range buf {
					isViolated[id] = true
				}
				for _, id := range buf {
					minimum := true
					for _, u := range g.Neighbors(id) {
						if isViolated[u] && u < id {
							minimum = false
							break
						}
					}
					if minimum {
						st.resample(k, id)
						res.Resamplings++
						steps++
					}
				}
			}
		}
		if o.OnRound != nil {
			o.OnRound(engine.RoundStats{Round: globalRound, Steps: steps, Active: violatedTotal, Halted: halted})
		}
	}
	return st.results, nil
}

// RunSequentialMT runs the sequential Moser-Tardos resampler on every
// packed instance in lockstep: each global iteration scans all active
// instances in one sharded pass, then every active instance resamples its
// lowest-indexed violated event on its private RNG. Per instance the scan
// results, draws and termination are exactly the solo sequence, so
// Result k is bit-identical to
// mt.Sequential(inst, prng.New(seeds[k]), opts.MaxResamplings).
func RunSequentialMT(p *Packed, seeds []uint64, o Options) ([]Result, error) {
	st, err := newPackedState(p, seeds, o)
	if err != nil {
		return nil, err
	}
	maxResamplings := o.MaxResamplings
	if maxResamplings == 0 {
		maxResamplings = defaultMaxResamplings
	}
	ctx := o.ctx()
	var buf []int
	for globalRound := 1; st.nActive > 0; globalRound++ {
		if cerr := ctx.Err(); cerr != nil {
			st.cancelAll()
			return st.results, fmt.Errorf("batch: sequential resampler cancelled: %w", cerr)
		}
		st.scan()
		st.obs.rounds.Inc()
		steps, violatedTotal, halted := 0, 0, 0
		for k := 0; k < p.Len(); k++ {
			if !st.active[k] {
				continue
			}
			res := &st.results[k]
			var verr error
			buf, verr = st.violated(k, buf)
			if verr != nil {
				res.Err = verr
				st.finish(k)
				halted++
				continue
			}
			violatedTotal += len(buf)
			switch {
			case len(buf) == 0:
				res.Satisfied = true
				st.finish(k)
				halted++
			case res.Resamplings == maxResamplings:
				res.ViolatedEvents = len(buf)
				st.finish(k)
				halted++
			default:
				st.resample(k, buf[0])
				res.Resamplings++
				steps++
			}
		}
		if o.OnRound != nil {
			o.OnRound(engine.RoundStats{Round: globalRound, Steps: steps, Active: violatedTotal, Halted: halted})
		}
	}
	return st.results, nil
}

// RunOneShot draws one sample per instance and counts violated events with
// a single packed scan. Result k is bit-identical to
// mt.OneShot(inst, prng.New(seeds[k])).
func RunOneShot(p *Packed, seeds []uint64, o Options) ([]Result, error) {
	st, err := newPackedState(p, seeds, o)
	if err != nil {
		return nil, err
	}
	if cerr := o.ctx().Err(); cerr != nil {
		st.cancelAll()
		return st.results, cerr
	}
	st.scan()
	st.obs.rounds.Inc()
	for k := 0; k < p.Len(); k++ {
		res := &st.results[k]
		violated, verr := st.violated(k, nil)
		if verr != nil {
			res.Err = verr
		} else {
			res.ViolatedEvents = len(violated)
			res.Satisfied = len(violated) == 0
		}
		st.finish(k)
	}
	if o.OnRound != nil {
		o.OnRound(engine.RoundStats{Round: 1, Active: 0, Halted: p.Len()})
	}
	return st.results, nil
}

// RunFixSequential runs the paper's deterministic sequential fixer on every
// packed instance, parallelized ACROSS instances on the pool (the fixer
// itself is inherently sequential). Each instance's result is the solo
// core.FixSequential output — the fixer is deterministic and the instances
// share no state. opts.Core must not carry Trace or checkpoint hooks.
func RunFixSequential(p *Packed, o Options) ([]Result, error) {
	if o.Core.Trace != nil || o.Core.OnCheckpoint != nil || o.Core.Resume != nil {
		return nil, fmt.Errorf("batch: core trace/checkpoint options are not supported in packed runs")
	}
	bo := newBatchObs(o.Metrics)
	bo.runs.Inc()
	bo.instances.Add(int64(p.Len()))
	bo.size.Observe(float64(p.Len()))
	results := make([]Result, p.Len())
	ctx := o.ctx()
	copts := o.Core
	o.pool().ForEach(p.Len(), func(k int) {
		res, err := core.FixSequentialCtx(ctx, p.Instance(k), nil, copts)
		r := &results[k]
		r.Err = err
		if res != nil {
			r.Assignment = res.Assignment
			r.VarsFixed = res.Stats.VarsFixed
			if err == nil {
				r.ViolatedEvents = res.Stats.FinalViolatedEvents
				r.Satisfied = r.ViolatedEvents == 0
			}
		}
	})
	if cerr := ctx.Err(); cerr != nil {
		return results, fmt.Errorf("batch: fixer batch cancelled: %w", cerr)
	}
	return results, nil
}
