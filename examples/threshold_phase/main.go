// Threshold phase: watch the sharp threshold of the paper's title happen.
// Sinkless orientation on a cycle has per-node failure probability exactly
// 2^-d; relaxing it by a slack δ scales the margin p·2^d to (1-δ)^d. This
// example sweeps the margin towards 1 and prints, for each value, what the
// deterministic fixer guarantees and what actually happens — including the
// failure the adversarial-but-feasible strategy produces exactly AT the
// threshold, where the certified bound degenerates to 1.
package main

import (
	"fmt"
	"os"

	lll "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "threshold_phase:", err)
		os.Exit(1)
	}
}

func run() error {
	g := lll.NewCycle(32)
	fmt.Println("margin p*2^d | cert bound | greedy violations | adversarial violations")
	fmt.Println("-------------+------------+-------------------+-----------------------")
	for _, margin := range []float64{0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		s, err := lll.NewSinklessWithMargin(g, margin)
		if err != nil {
			return err
		}
		greedy, err := lll.Solve(s.Instance, lll.Options{Strategy: lll.StrategyMinScore})
		if err != nil {
			return err
		}
		adv, err := lll.Solve(s.Instance, lll.Options{Strategy: lll.StrategyAdversarial})
		if err != nil {
			return err
		}
		fmt.Printf("%12.3f | %10.4f | %17d | %d\n",
			margin, adv.Stats.MaxFinalProbQuotient,
			greedy.Stats.FinalViolatedEvents, adv.Stats.FinalViolatedEvents)
	}
	fmt.Println()
	fmt.Println("below margin 1 every feasible choice sequence succeeds (Theorem 1.1);")
	fmt.Println("at margin 1 the guarantee degenerates and adversarial choices build a sink —")
	fmt.Println("the deterministic O(d + log* n) regime ends exactly at p = 2^-d.")
	return nil
}
